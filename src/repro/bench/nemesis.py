"""The partition nemesis drill: seeded chaos + client-history checking.

The torture harness's discipline applied to network partitions: a
seeded :class:`~repro.faults.partition.PartitionPlan` cuts and heals
the cluster's three link pairs (coordinator↔primary heartbeats,
primary↔replica WAL shipping, client↔server TCP) while a
single-threaded driver pushes real :class:`~repro.net.client.PMVClient`
traffic over real sockets against a lease-gated cluster on a fake
shared clock.  Because the driver is single-threaded, every
post-response truth probe (the serving node's WAL position, its
ISOLATED state) is exact — there is no racing writer.

Per seed, the **history checker** verifies from the client-observed
ledger:

- **zero acked-write loss** — every acknowledged insert not later
  acknowledged-deleted is in the surviving timeline;
- **at-most-once** — no client-owned row was applied twice, despite
  retries through drops, refusals, and isolation windows;
- **one writer per era** — no two nodes ever acknowledged writes
  stamped with the same epoch;
- **no zombie reads** — no read was served by a node in ISOLATED mode,
  and a stale router still bound to the deposed primary is *refused*
  (with ``lease_ttl=None`` — the legacy fence-only configuration — the
  same probe serves, which is the regression the lease layer closes);
- **honest stamps** — every ``replica_lag`` stamp is at least the true
  lag at response time (the serving node's watermark against its era
  primary's end-of-log);
- **reads are truth subsets** — every read's rows are a multiset
  subset of the database state at its stamped ``applied_lsn``,
  verified by replaying the era's WAL prefix into a scratch database;
- **monotonic sessions** — within one epoch, a session's stamped
  ``applied_lsn`` never goes backwards (the v2 ``min_lsn`` token at
  work).

Failures print replay handles — ``SEED=<n> SCHEDULE=<events>`` — and
``--schedule`` replays a schedule verbatim.

Run as a module::

    python -m repro.bench.nemesis --seeds 0 1 2 3 --report BENCH_nemesis.json
"""

from __future__ import annotations

import argparse
import json
import random
import time
from dataclasses import asdict, dataclass, field

from repro.core import Discretization
from repro.core.manager import PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.engine.wal import WriteAheadLog, replay_record
from repro.errors import (
    NetError,
    OverloadError,
    ReproError,
    RetryExhaustedError,
)
from repro.faults.partition import Nemesis, PartitionPlan
from repro.net import ClusterFrontEnd, NetServer, PMVClient
from repro.net.client import RetryPolicy
from repro.qos.gate import ServingGate
from repro.replication import (
    ControlLink,
    FailoverCoordinator,
    PrimaryNode,
    ReplicaNode,
)

__all__ = ["NemesisConfig", "NemesisReport", "run_nemesis", "run_sweep", "main"]

# Client-owned rows live far above the seeded id range so the checker
# can own them exclusively (same convention as repro.bench.netload).
CLIENT_ID_BASE = 100_000
CLIENT_ID_STRIDE = 10_000


@dataclass(frozen=True)
class NemesisConfig:
    seed: int = 0
    steps: int = 80
    clients: int = 3
    heartbeat_interval: float = 1.0
    suspicion_threshold: int = 3
    lease_ttl: float | None = 4.0
    """None runs the legacy fence-only cluster — the configuration the
    zombie-read regression test proves the checker catches."""
    step_seconds: float = 0.5
    staleness_bound: int = 256
    retry_attempts: int = 3
    retry_base_delay: float = 0.002
    quiesce: int = 12
    schedule: str | None = None
    """A SCHEDULE replay handle; overrides seeded generation."""


@dataclass
class NemesisReport:
    seed: int = 0
    schedule: str = ""
    steps: int = 0
    ops: int = 0
    reads: int = 0
    replica_served: int = 0
    writes_acked: int = 0
    duplicates_acked: int = 0
    unavailable: int = 0
    sheds: int = 0
    client_retries: int = 0
    failovers: int = 0
    epochs: list = field(default_factory=list)
    promotions_refused_lease: int = 0
    promotions_refused_watermark: int = 0
    fences_skipped: int = 0
    isolated_refusals: int = 0
    zombie_probe_refusals: int = 0
    zombie_probe_serves: int = 0
    monotonic_fallbacks: int = 0
    connections_refused: int = 0
    violations: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and self.writes_acked > 0 and self.reads > 0


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="tq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


class _Cluster:
    """A lease-gated semi-sync cluster on a fake shared clock, with
    every partition seam exposed for the nemesis."""

    def __init__(self, config: NemesisConfig):
        self.config = config
        self.clock = [0.0]
        database = Database(wal=WriteAheadLog())
        database.create_relation(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("c", INTEGER, nullable=False),
                Column("f", INTEGER, nullable=False),
                Column("a", TEXT),
            ],
        )
        database.create_relation(
            "s",
            [
                Column("d", INTEGER, nullable=False),
                Column("g", INTEGER, nullable=False),
                Column("e", TEXT),
            ],
        )
        database.create_index("r_f", "r", ["f"])
        database.create_index("r_c", "r", ["c"])
        database.create_index("s_d", "s", ["d"])
        database.create_index("s_g", "s", ["g"])
        for i in range(48):
            database.insert("r", (i, i % 6, i % 4, f"a{i}"))
        for j in range(24):
            database.insert("s", (j % 6, j % 3, f"e{j}"))
        self.template = _make_template()
        database.register_template(self.template)
        manager = PMVManager(database)
        manager.create_view(
            self.template,
            Discretization(self.template),
            tuples_per_entry=3,
            max_entries=8,
            aux_index_columns=("r.a", "s.e"),
        )
        self.primary = PrimaryNode(
            database, manager=manager, clock=lambda: self.clock[0]
        )
        self.replicas = [ReplicaNode(f"replica-{n}") for n in (1, 2)]
        for replica in self.replicas:
            self.primary.attach_replica(replica)
        self.primary.ship()
        for replica in self.replicas:
            replica.mirror_views(manager)
        self.gate = ServingGate(manager)
        self.coordinator = FailoverCoordinator(
            self.primary,
            self.replicas,
            gate=self.gate,
            heartbeat_interval=config.heartbeat_interval,
            suspicion_threshold=config.suspicion_threshold,
            lease_ttl=config.lease_ttl,
            clock=lambda: self.clock[0],
        )
        self.control = ControlLink(self.coordinator, self.primary)
        # The fence is best-effort: only when the coordinator→primary
        # direction of the control link is up can it reach the old WAL.
        self.coordinator.primary_reachable = lambda: self.control.down
        self.front_end = ClusterFrontEnd(
            self.gate,
            coordinator=self.coordinator,
            staleness_bound=config.staleness_bound,
        )
        # The stale router: a second gate bound to the *original*
        # primary that never learns about failovers — the zombie-read
        # window made probeable.  Lease-gated, its reads must be
        # refused once the original primary is deposed; fence-only,
        # they keep serving (the regression).
        self.stale_gate = ServingGate(manager)
        self.primary.bind_gate(self.stale_gate)
        # era registry: epoch -> the node that served it (its WAL is
        # that era's ground truth for the history checker)
        self.eras: dict[int, PrimaryNode] = {self.primary.epoch: self.primary}
        self.coordinator.add_failover_listener(self._on_promote)
        self.ship_cut = False
        self.client_cut = False
        self.server: NetServer | None = None

    def _on_promote(self, new_primary: PrimaryNode) -> None:
        self.eras[new_primary.epoch] = new_primary
        # The control plane re-establishes its channel to the new
        # leaseholder; the old primary's lease is never renewed again.
        self.control.rebind(new_primary)
        self._sync_ship_links()

    # -- nemesis seams ---------------------------------------------------------

    def cut_ship(self, direction: str = "both") -> None:
        self.ship_cut = True
        self._sync_ship_links()

    def heal_ship(self, direction: str = "both") -> None:
        self.ship_cut = False
        self._sync_ship_links()

    def _sync_ship_links(self) -> None:
        """Apply the ship-cut flag to the *current* primary's links
        (promotion creates fresh links, which must inherit the cut)."""
        for link in self.coordinator.primary.links:
            if self.ship_cut and not link.partitioned:
                link.partitioned = True
                link.partitions += 1
            elif not self.ship_cut and link.partitioned:
                link.heal()

    def cut_clients(self, direction: str = "both") -> None:
        self.client_cut = True
        if self.server is not None:
            self.server.drop_connections()

    def heal_clients(self, direction: str = "both") -> None:
        self.client_cut = False


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


@dataclass
class _ReadRecord:
    client: int
    query: object
    rows: list
    epoch: int | None
    applied_lsn: int | None
    replica_lag: int | None
    truth_last: int
    isolated: bool
    served_by: str | None


class _Ledger:
    """Everything the clients observed, for the history checker."""

    def __init__(self) -> None:
        self.acked_inserts: dict[int, int] = {}
        self.acked_deletes: set[int] = set()
        # Deletes whose outcome is *in doubt*: issued, but the client
        # exhausted retries without an ack (e.g. applied on the primary
        # while the ship link was cut, so the semi-sync ack never came).
        # The row may or may not be gone — the durability check cannot
        # call its absence a loss, nor its presence a resurrection.
        self.indoubt_deletes: set[int] = set()
        self.write_acks: list[tuple[int | None, str | None, int]] = []
        self.reads: list[_ReadRecord] = []
        self.session_high: dict[int, tuple[int, int]] = {}  # client -> (epoch, lsn)


def _drive(
    cluster: _Cluster,
    nemesis: Nemesis,
    clients: list[PMVClient],
    config: NemesisConfig,
    ledger: _Ledger,
    report: NemesisReport,
) -> None:
    rng = random.Random(f"nemesis:{config.seed}")
    inserted: dict[int, list[int]] = {c: [] for c in range(config.clients)}
    next_id = [
        CLIENT_ID_BASE + index * CLIENT_ID_STRIDE for index in range(config.clients)
    ]
    for step in range(config.steps):
        nemesis.advance_to(step)
        cluster._sync_ship_links()
        cluster.clock[0] += config.step_seconds
        cluster.control.pump()
        cluster.coordinator.tick()
        try:
            cluster.coordinator.primary.ship()
        except ReproError:
            pass
        for index, client in enumerate(clients):
            roll = rng.random()
            try:
                if roll < 0.45:
                    _one_read(cluster, client, index, rng, config, ledger, report)
                elif roll < 0.85 or not inserted[index]:
                    row_id = next_id[index]
                    next_id[index] += 1
                    ack = client.insert(
                        "r",
                        [row_id, rng.randrange(6), rng.randrange(4), f"nz{row_id}"],
                    )
                    ledger.acked_inserts[row_id] = (
                        ledger.acked_inserts.get(row_id, 0) + 1
                    )
                    inserted[index].append(row_id)
                    ledger.write_acks.append((ack.epoch, ack.served_by, ack.lsn))
                    report.writes_acked += 1
                    if ack.duplicate:
                        report.duplicates_acked += 1
                else:
                    row_id = inserted[index].pop(rng.randrange(len(inserted[index])))
                    ledger.indoubt_deletes.add(row_id)
                    ack = client.delete_eq("r", "id", row_id)
                    ledger.indoubt_deletes.discard(row_id)
                    ledger.acked_deletes.add(row_id)
                    ledger.write_acks.append((ack.epoch, ack.served_by, ack.lsn))
                    report.writes_acked += 1
                    if ack.duplicate:
                        report.duplicates_acked += 1
            except OverloadError:
                report.sheds += 1
            except (RetryExhaustedError, NetError, OSError):
                # Unavailability under partition is the *correct*
                # behaviour — the checker only polices what was acked.
                report.unavailable += 1
            report.ops += 1
        _probe_zombie(cluster, report)
    # Quiesce: the generated schedule's tail is already fully healed;
    # force-heal (covers replayed custom schedules too) and drain.
    nemesis.heal_all()
    cluster.heal_ship()
    cluster.heal_clients()
    for _ in range(config.quiesce):
        cluster.clock[0] += config.step_seconds
        cluster.control.pump()
        cluster.coordinator.tick()
        try:
            cluster.coordinator.primary.ship()
        except ReproError:
            pass


def _one_read(
    cluster: _Cluster,
    client: PMVClient,
    index: int,
    rng: random.Random,
    config: NemesisConfig,
    ledger: _Ledger,
    report: NemesisReport,
) -> None:
    query = cluster.template.bind(
        [
            EqualityDisjunction("r.f", [rng.randrange(4)]),
            EqualityDisjunction("s.g", [rng.randrange(3)]),
        ]
    )
    answer = client.query(
        query,
        budget=2.0,
        staleness_bound=config.staleness_bound,
        prefer_replica=rng.random() < 0.5,
    )
    report.reads += 1
    if answer.replica_lag is not None:
        report.replica_served += 1
    era_node = cluster.eras.get(answer.epoch) if answer.epoch is not None else None
    truth_last = (
        era_node.database.wal.last_lsn if era_node is not None else 0
    )
    isolated = era_node.is_isolated() if era_node is not None else False
    ledger.reads.append(
        _ReadRecord(
            client=index,
            query=query,
            rows=list(answer.rows),
            epoch=answer.epoch,
            applied_lsn=answer.applied_lsn,
            replica_lag=answer.replica_lag,
            truth_last=truth_last,
            isolated=isolated,
            served_by=answer.served_by,
        )
    )
    # Monotonic session: within one epoch, the stamped watermark never
    # regresses (the min_lsn token reroutes lagging replicas).
    if answer.epoch is not None and answer.applied_lsn is not None:
        high = ledger.session_high.get(index)
        if high is not None and high[0] == answer.epoch and answer.applied_lsn < high[1]:
            report.violations.append(
                f"monotonic-read: client {index} saw LSN {answer.applied_lsn} "
                f"after {high[1]} in epoch {answer.epoch}"
            )
        if high is None or high[0] != answer.epoch or answer.applied_lsn > high[1]:
            ledger.session_high[index] = (answer.epoch, answer.applied_lsn)


def _probe_zombie(cluster: _Cluster, report: NemesisReport) -> None:
    """Read through the stale router still bound to the original
    primary.  Once deposed, a lease-gated original must refuse; a
    serve after deposition is the zombie-read window."""
    original = cluster.eras[min(cluster.eras)]
    if cluster.coordinator.primary is original:
        return
    probe = cluster.template.bind(
        [
            EqualityDisjunction("r.f", [0]),
            EqualityDisjunction("s.g", [0]),
        ]
    )
    try:
        cluster.stale_gate.execute(probe)
    except ReproError:
        report.zombie_probe_refusals += 1
        return
    report.zombie_probe_serves += 1
    report.violations.append(
        f"zombie-read: deposed {original.name} (epoch {original.epoch}, mode "
        f"{original.mode}) served a read while epoch "
        f"{cluster.coordinator.primary.epoch} is live"
    )


# ---------------------------------------------------------------------------
# The history checker
# ---------------------------------------------------------------------------


def _check_history(
    cluster: _Cluster, ledger: _Ledger, report: NemesisReport
) -> None:
    # -- acked durability and at-most-once against the survivor ------------
    database = cluster.coordinator.primary.database
    counts: dict[int, int] = {}
    for row in database.catalog.relation("r").scan_rows():
        row_id = row["id"]
        if row_id >= CLIENT_ID_BASE:
            counts[row_id] = counts.get(row_id, 0) + 1
    for row_id, count in sorted(counts.items()):
        if count > 1:
            report.violations.append(
                f"duplicate-application: row {row_id} present {count} times"
            )
    for row_id in sorted(ledger.acked_inserts):
        if row_id in ledger.acked_deletes:
            if counts.get(row_id, 0) != 0:
                report.violations.append(
                    f"resurrected-delete: row {row_id} acked deleted but present"
                )
        elif row_id in ledger.indoubt_deletes:
            pass  # delete in doubt: either outcome is legal
        elif counts.get(row_id, 0) == 0:
            report.violations.append(
                f"acked-write-loss: row {row_id} acked but missing from "
                f"the surviving timeline"
            )
    # -- one writer per era -----------------------------------------------
    writers: dict[int, set[str]] = {}
    for epoch, served_by, _lsn in ledger.write_acks:
        if epoch is not None and served_by is not None:
            writers.setdefault(epoch, set()).add(served_by)
    for epoch, nodes in sorted(writers.items()):
        if len(nodes) > 1:
            report.violations.append(
                f"split-brain: epoch {epoch} has writes acked by {sorted(nodes)}"
            )
    # -- per-read checks: isolation, lag honesty, truth subset -------------
    for record in ledger.reads:
        if record.isolated:
            report.violations.append(
                f"isolated-serve: read for client {record.client} served while "
                f"{record.served_by} was ISOLATED"
            )
        if record.replica_lag is not None and record.applied_lsn is not None:
            true_lag = max(0, record.truth_last - record.applied_lsn)
            if record.replica_lag < true_lag:
                report.violations.append(
                    f"lag-understated: stamp {record.replica_lag} < true lag "
                    f"{true_lag} (client {record.client}, LSN {record.applied_lsn})"
                )
    _check_read_subsets(cluster, ledger, report)


def _check_read_subsets(
    cluster: _Cluster, ledger: _Ledger, report: NemesisReport
) -> None:
    """Replay each era's WAL prefix and require every read's rows to be
    a multiset subset of the state at its stamped LSN."""
    by_epoch: dict[int, list[_ReadRecord]] = {}
    for record in ledger.reads:
        if record.epoch is None or record.applied_lsn is None:
            continue
        by_epoch.setdefault(record.epoch, []).append(record)
    for epoch, records in sorted(by_epoch.items()):
        node = cluster.eras.get(epoch)
        if node is None:
            report.violations.append(f"unknown-era: reads stamped epoch {epoch}")
            continue
        log = list(node.database.wal.records())
        scratch = Database()
        position = 0
        for record in sorted(records, key=lambda r: r.applied_lsn):
            while position < len(log) and log[position].lsn <= record.applied_lsn:
                replay_record(scratch, log[position])
                position += 1
            names = record.query.template.select_list
            truth = [
                tuple(row.project(names).values)
                for row in scratch.run(record.query)
            ]
            remaining = list(truth)
            for row in record.rows:
                if row in remaining:
                    remaining.remove(row)
                else:
                    report.violations.append(
                        f"non-subset-read: client {record.client} row {row!r} "
                        f"absent from epoch {epoch} state at LSN "
                        f"{record.applied_lsn}"
                    )
                    break


# ---------------------------------------------------------------------------
# One seed, and the sweep
# ---------------------------------------------------------------------------


def run_nemesis(config: NemesisConfig | None = None, verbose: bool = False) -> NemesisReport:
    config = config or NemesisConfig()
    started = time.perf_counter()
    if config.schedule is not None:
        plan = PartitionPlan.parse(config.schedule)
    else:
        plan = PartitionPlan.generate(
            config.seed, config.steps, quiesce=config.quiesce
        )
    report = NemesisReport(
        seed=config.seed, schedule=plan.describe(), steps=config.steps
    )
    cluster = _Cluster(config)
    nemesis = Nemesis(plan)
    nemesis.register("coord-primary", cluster.control.cut, cluster.control.heal)
    nemesis.register("primary-replica", cluster.cut_ship, cluster.heal_ship)
    nemesis.register("client-server", cluster.cut_clients, cluster.heal_clients)

    server = NetServer(
        cluster.front_end, refuse_connections=lambda: cluster.client_cut
    )
    cluster.server = server
    host, port = server.start()
    if verbose:
        print(f"[nemesis] SEED={config.seed} SCHEDULE={plan.describe()}")
        print(f"[nemesis] serving at {host}:{port}")

    clients = [
        PMVClient(
            host,
            port,
            f"nz{config.seed}-{index}",
            retry=RetryPolicy(
                attempts=config.retry_attempts,
                base_delay=config.retry_base_delay,
            ),
        )
        for index in range(config.clients)
    ]
    ledger = _Ledger()
    try:
        _drive(cluster, nemesis, clients, config, ledger, report)
    finally:
        for client in clients:
            report.client_retries += client.retries
            client.close()
        server.stop()

    _check_history(cluster, ledger, report)
    coord = cluster.coordinator
    report.failovers = coord.failovers
    report.epochs = list(coord.epoch_history)
    report.promotions_refused_lease = coord.promotions_refused_lease
    report.promotions_refused_watermark = coord.promotions_refused_watermark
    report.fences_skipped = coord.fences_skipped
    report.isolated_refusals = sum(
        node.isolated_refusals for node in cluster.eras.values()
    )
    snapshot = cluster.front_end.metrics.snapshot()
    report.monotonic_fallbacks = snapshot["net_monotonic_fallbacks"]
    report.connections_refused = snapshot["net_connections_refused"]
    report.elapsed_seconds = time.perf_counter() - started
    if verbose:
        verdict = "ALL INVARIANTS HELD" if report.ok else "INVARIANT VIOLATIONS"
        print(
            f"[nemesis] seed {config.seed}: {report.ops} ops "
            f"({report.reads} reads, {report.writes_acked} acked writes, "
            f"{report.unavailable} unavailable), epochs {report.epochs}, "
            f"{report.promotions_refused_lease} lease-refused promotions, "
            f"{report.isolated_refusals} isolated refusals, "
            f"{report.zombie_probe_refusals} zombie probes refused"
        )
        print(f"[nemesis] {verdict} in {report.elapsed_seconds:.1f}s")
        for violation in report.violations[:10]:
            print(f"[nemesis]   VIOLATION: {violation}")
        if not report.ok:
            print(
                f"[nemesis] replay: python -m repro.bench.nemesis "
                f"--seeds {config.seed} --steps {config.steps}"
            )
    return report


def run_sweep(
    seeds: list[int],
    steps: int = 80,
    verbose: bool = False,
) -> list[NemesisReport]:
    return [
        run_nemesis(NemesisConfig(seed=seed, steps=steps), verbose=verbose)
        for seed in seeds
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.nemesis",
        description="Seeded partition nemesis with client-history checking.",
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2, 3])
    parser.add_argument("--steps", type=int, default=80)
    parser.add_argument(
        "--schedule", default=None,
        help="replay a SCHEDULE handle verbatim (single seed only)",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the JSON report here (e.g. BENCH_nemesis.json)",
    )
    args = parser.parse_args(argv)
    if args.schedule is not None:
        reports = [
            run_nemesis(
                NemesisConfig(
                    seed=args.seeds[0], steps=args.steps, schedule=args.schedule
                ),
                verbose=True,
            )
        ]
    else:
        reports = run_sweep(args.seeds, steps=args.steps, verbose=True)
    ok = all(report.ok for report in reports)
    ran = [report.seed for report in reports]
    print(
        f"[nemesis] sweep over seeds {ran}: "
        f"{'ALL GREEN' if ok else 'FAILURES'}"
    )
    if args.report is not None:
        payload = {
            "ok": ok,
            "seeds": [
                dict(asdict(report), ok=report.ok) for report in reports
            ],
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[nemesis] report written to {args.report}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
