"""Experiment drivers — one per table/figure of the paper's Section 4.

Every ``run_*`` function regenerates the corresponding figure's series
(and prints them via :mod:`repro.bench.reporting` when asked), at a
configurable scale:

- the simulation experiments (Figures 6-7) default to 2 % of the
  paper's counts (universe, PMV capacity, and query volumes all shrink
  together, preserving their ratios);
- the engine experiments (Figures 8-10) default to a ×1,000 downscale
  of the TPC-R data, with a deliberately small buffer pool so query
  execution stays I/O-bound like the paper's testbed;
- the analytical model (Figures 11-12) needs no scaling.

Environment overrides:

- ``PMV_BENCH_SCALE`` — ``paper`` for full-size simulation runs, or a
  float fraction (default ``0.02``);
- ``PMV_BENCH_DOWNSCALE`` — TPC-R row-count divisor (default ``1000``;
  ``1`` is the paper's full size);
- ``PMV_BENCH_RUNS`` — measured queries per engine data point
  (default ``20``; the paper averages over "a large number of runs").
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.bench.reporting import Series, format_series, format_table, scale_note
from repro.core.costmodel import MaintenanceCostModel
from repro.core.discretize import Discretization
from repro.core.executor import DEFAULT_O1_CACHE_SIZE, PMVExecutor
from repro.core.view import PartialMaterializedView
from repro.engine.database import Database
from repro.sim.hitprob import SimulationConfig, simulate_hit_probability
from repro.workload.queries import ControlledQueryFactory
from repro.workload.templates import make_t1, make_t2
from repro.workload.tpcr import TPCRConfig, TPCRDataset, load_tpcr, table1_rows

__all__ = [
    "sim_scale",
    "engine_downscale",
    "engine_runs",
    "run_table1",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_o1_ablation",
    "OverheadMeasurement",
    "ExperimentDatabase",
    "build_experiment_database",
    "measure_overhead",
]

# -- scale knobs ---------------------------------------------------------------


def sim_scale() -> float:
    """Fraction of the paper's simulation sizes to run at."""
    raw = os.environ.get("PMV_BENCH_SCALE", "0.02")
    if raw.lower() == "paper":
        return 1.0
    return float(raw)


def engine_downscale() -> int:
    """TPC-R row-count divisor for the engine experiments."""
    return int(os.environ.get("PMV_BENCH_DOWNSCALE", "1000"))


def engine_runs() -> int:
    """Measured queries per engine data point."""
    return int(os.environ.get("PMV_BENCH_RUNS", "20"))


# -- Table 1 ----------------------------------------------------------------------


def run_table1(
    scale_factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    verbose: bool = True,
) -> list[dict[str, float]]:
    """Table 1: tuple counts and sizes of the TPC-R-like relations."""
    rows = []
    for s in scale_factors:
        for entry in table1_rows(s):
            rows.append({"scale": s, **entry})
    if verbose:
        print(
            format_table(
                ["s", "relation", "tuples", "MB"],
                [[r["scale"], r["relation"], r["tuples"], round(r["megabytes"], 1)] for r in rows],
            )
        )
    return rows


# -- Figures 6-7: the simulation study ----------------------------------------------


def run_fig6(
    scale: float | None = None,
    hs: Sequence[int] = (1, 2, 3, 4, 5),
    alphas: Sequence[float] = (1.07, 1.01),
    policies: Sequence[str] = ("2q", "clock"),
    verbose: bool = True,
) -> list[Series]:
    """Figure 6: hit probability vs. h, for CLOCK/2Q × α∈{1.07, 1.01}."""
    scale = sim_scale() if scale is None else scale
    base = SimulationConfig().scaled(scale)
    series: list[Series] = []
    for policy in policies:
        for alpha in alphas:
            line = Series(label=f"{policy.upper()}, alpha={alpha}")
            for h in hs:
                config = SimulationConfig(
                    universe=base.universe,
                    cells_per_query=h,
                    alpha=alpha,
                    policy=policy,
                    capacity=base.capacity,
                    warmup_queries=base.warmup_queries,
                    measured_queries=base.measured_queries,
                    seed=base.seed,
                )
                line.add(h, simulate_hit_probability(config).hit_probability)
            series.append(line)
    if verbose:
        print(scale_note(f"simulation at {scale:.2%} of paper counts "
                         f"(universe={base.universe}, N={base.capacity})"))
        print(format_series("h", series))
    return series


def run_fig7(
    scale: float | None = None,
    capacities: Sequence[int] | None = None,
    alpha: float = 1.07,
    h: int = 2,
    policies: Sequence[str] = ("2q", "clock"),
    verbose: bool = True,
) -> list[Series]:
    """Figure 7: hit probability vs. PMV size N (10K-30K at paper scale)."""
    scale = sim_scale() if scale is None else scale
    base = SimulationConfig().scaled(scale)
    if capacities is None:
        # The paper sweeps N = 10K, 20K, 30K; scale them the same way.
        capacities = [max(1, round(n * scale)) for n in (10_000, 20_000, 30_000)]
    series: list[Series] = []
    for policy in policies:
        line = Series(label=policy.upper())
        for capacity in capacities:
            config = SimulationConfig(
                universe=base.universe,
                cells_per_query=h,
                alpha=alpha,
                policy=policy,
                capacity=capacity,
                warmup_queries=base.warmup_queries,
                measured_queries=base.measured_queries,
                seed=base.seed,
            )
            line.add(capacity, simulate_hit_probability(config).hit_probability)
        series.append(line)
    if verbose:
        print(scale_note(f"simulation at {scale:.2%} of paper counts "
                         f"(universe={base.universe})"))
        print(format_series("N", series))
    return series


# -- Figures 8-10: engine overhead experiments ----------------------------------------


@dataclass
class ExperimentDatabase:
    """A loaded TPC-R database plus the slot domains for query making."""

    database: Database
    dataset: TPCRDataset
    dates: list[str]
    suppliers: list[int]
    nations: list[int]


def build_experiment_database(
    scale_factor: float = 1.0,
    downscale: int | None = None,
    seed: int = 42,
    buffer_pool_pages: int = 32,
    distinct_order_dates: int = 120,
    suppliers: int = 30,
    nations: int = 3,
) -> ExperimentDatabase:
    """Load the TPC-R-like data for the Section 4.2 experiments.

    The buffer pool is deliberately smaller than the data at every
    scale factor (32 pages vs. ~55+ data pages even at s=0.5) so full
    execution pays page I/O, as on the paper's 512 MB testbed; the
    value domains are narrowed at small downscales so basic condition
    parts hold more than F result tuples, as the paper requires.
    """
    downscale = engine_downscale() if downscale is None else downscale
    config = TPCRConfig(
        scale_factor=scale_factor,
        downscale=downscale,
        seed=seed,
        distinct_order_dates=distinct_order_dates,
        suppliers=suppliers,
        nations=nations,
    )
    database = Database(buffer_pool_pages=buffer_pool_pages)
    dataset = load_tpcr(database, config)
    # The paper runs the statistics collection program before measuring
    # (Section 4.2); ours feeds the planner's driver choice.
    database.analyze()
    return ExperimentDatabase(
        database=database,
        dataset=dataset,
        dates=config.order_dates(),
        suppliers=list(range(1, config.suppliers + 1)),
        nations=list(range(config.nations)),
    )


def find_dense_cell(env: ExperimentDatabase, template_name: str) -> tuple:
    """The densest basic condition part in the data (the hot cell).

    The paper requires every measured bcp to hold more than F result
    tuples; picking the densest cell guarantees that at any downscale.
    """
    db = env.database
    orders_by_key = db.catalog.index("orders_orderkey")
    orders = db.catalog.relation("orders")
    counts: Counter = Counter()
    if template_name == "T1":
        for lineitem in db.catalog.relation("lineitem").scan_rows():
            for row_id in orders_by_key.probe(lineitem["orderkey"]):
                order = orders.fetch(row_id)
                counts[(order["orderdate"], lineitem["suppkey"])] += 1
    else:
        customer_by_key = db.catalog.index("customer_custkey")
        customers = db.catalog.relation("customer")
        for lineitem in db.catalog.relation("lineitem").scan_rows():
            for row_id in orders_by_key.probe(lineitem["orderkey"]):
                order = orders.fetch(row_id)
                for cust_id in customer_by_key.probe(order["custkey"]):
                    customer = customers.fetch(cust_id)
                    counts[
                        (order["orderdate"], lineitem["suppkey"], customer["nationkey"])
                    ] += 1
    cell, _ = counts.most_common(1)[0]
    return cell


@dataclass
class OverheadMeasurement:
    """Averages over one engine data point (one (template, h, F, s))."""

    template: str
    h: int
    tuples_per_entry: int
    scale_factor: float
    runs: int
    mean_overhead_seconds: float
    mean_partial_latency_seconds: float
    mean_execution_seconds: float
    mean_simulated_execution_seconds: float
    mean_partial_tuples: float
    mean_total_tuples: float
    hit_fraction: float
    o1_cache_hit_ratio: float = 0.0
    """Fraction of measured queries whose O1 decomposition came from
    the executor's memo (0.0 when the memo is disabled)."""

    @property
    def overhead_per_tuple_seconds(self) -> float:
        """Overhead normalized by result tuples processed.

        In the paper's C implementation per-part/per-tuple *complexity*
        drives the T1-vs-T2 comparison; in Python the absolute overhead
        also tracks result cardinality, so this normalized view is the
        comparable quantity (see EXPERIMENTS.md).
        """
        if self.mean_total_tuples == 0:
            return self.mean_overhead_seconds
        return self.mean_overhead_seconds / self.mean_total_tuples


def measure_overhead(
    env: ExperimentDatabase,
    template_name: str,
    h: int,
    tuples_per_entry: int,
    runs: int | None = None,
    pmv_entries: int = 20_000,
    seed: int = 123,
    use_o1_cache: bool = True,
    query_pool: int | None = None,
) -> OverheadMeasurement:
    """One engine data point: PMV overhead under the 4.2 protocol.

    The query stream is the controlled construction of Section 4.2 —
    each query breaks into exactly ``h`` basic condition parts, one of
    which (the densest cell) is resident in the PMV.  Reported overhead
    is O1 + O2 + O3's checking; execution time is the full blocking
    plan, both as wall-clock and with simulated disk latency added to
    the plan's physical page traffic.  ``use_o1_cache=False`` disables
    the executor's decomposition memo (for memoization ablations); the
    measured memo hit rate is reported either way.

    By default every measured query is a fresh controlled construction,
    so bound values essentially never repeat.  ``query_pool=k`` instead
    cycles the measured runs through a fixed pool of ``k`` such queries
    — the repetition regime a real analyst stream exhibits and the one
    the decomposition memo targets.
    """
    runs = engine_runs() if runs is None else runs
    db = env.database
    template = make_t1() if template_name == "T1" else make_t2()
    if not db.catalog.has_relation(template.relations[0]):
        raise ValueError("experiment database missing TPC-R relations")
    discretization = Discretization(template)
    view = PartialMaterializedView(
        template,
        discretization,
        tuples_per_entry=tuples_per_entry,
        max_entries=pmv_entries,
        policy="clock",
    )
    executor = PMVExecutor(
        db,
        view,
        o1_cache_size=DEFAULT_O1_CACHE_SIZE if use_o1_cache else 0,
    )
    domains: list[Sequence] = [env.dates, env.suppliers]
    if template_name == "T2":
        domains.append(env.nations)
    hot = find_dense_cell(env, template_name)
    factory = ControlledQueryFactory(template, domains, seed=seed)
    # Warm: make the hot cell resident and filled with F tuples, then
    # run (and discard) a few protocol queries so interpreter and
    # buffer-pool warm-up does not pollute the measured averages.
    executor.execute(factory.query(1, hot))
    for _ in range(3):
        executor.execute(factory.query(h, hot))

    if query_pool is not None:
        pool = [factory.query(h, hot) for _ in range(query_pool)]
        stream = [pool[i % query_pool] for i in range(runs)]
    else:
        stream = [factory.query(h, hot) for _ in range(runs)]

    overhead = partial_latency = execution = simulated = partial_tuples = 0.0
    total_tuples = 0.0
    hits = 0
    o1_hits_before = view.metrics.o1_cache_hits
    latency = db.latency_model
    for query in stream:
        before = db.io_snapshot()
        result = executor.execute(query)
        io = db.io_since(before)
        metrics = result.metrics
        overhead += metrics.overhead_seconds
        partial_latency += metrics.partial_latency_seconds
        execution += metrics.execution_seconds
        simulated += metrics.execution_seconds + latency.cost(io.reads, io.writes)
        partial_tuples += metrics.partial_tuples
        total_tuples += metrics.total_tuples
        if metrics.hit:
            hits += 1
    return OverheadMeasurement(
        template=template_name,
        h=h,
        tuples_per_entry=tuples_per_entry,
        scale_factor=env.dataset.config.scale_factor,
        runs=runs,
        mean_overhead_seconds=overhead / runs,
        mean_partial_latency_seconds=partial_latency / runs,
        mean_execution_seconds=execution / runs,
        mean_simulated_execution_seconds=simulated / runs,
        mean_partial_tuples=partial_tuples / runs,
        mean_total_tuples=total_tuples / runs,
        hit_fraction=hits / runs,
        o1_cache_hit_ratio=(view.metrics.o1_cache_hits - o1_hits_before) / runs,
    )


def run_fig8(
    f_values: Sequence[int] = (1, 2, 3, 4, 5),
    h: int = 4,
    scale_factor: float = 1.0,
    verbose: bool = True,
) -> list[Series]:
    """Figure 8: PMV overhead vs. F (h=4, s=1), templates T1 and T2."""
    env = build_experiment_database(scale_factor=scale_factor)
    series = [
        Series("T1 overhead (s)"),
        Series("T2 overhead (s)"),
        Series("T1 per-tuple (s)"),
        Series("T2 per-tuple (s)"),
    ]
    for f in f_values:
        for offset, name in ((0, "T1"), (1, "T2")):
            m = measure_overhead(env, name, h=h, tuples_per_entry=f)
            series[offset].add(f, m.mean_overhead_seconds)
            series[offset + 2].add(f, m.overhead_per_tuple_seconds)
    if verbose:
        print(scale_note(_engine_scale_text(env)))
        print(format_series("F", series))
    return series


def run_fig9(
    h_values: Sequence[int] = tuple(range(1, 11)),
    tuples_per_entry: int = 3,
    scale_factor: float = 1.0,
    verbose: bool = True,
) -> list[Series]:
    """Figure 9: PMV overhead vs. combination factor h (F=3, s=1)."""
    env = build_experiment_database(scale_factor=scale_factor)
    series = [
        Series("T1 overhead (s)"),
        Series("T2 overhead (s)"),
        Series("T1 per-tuple (s)"),
        Series("T2 per-tuple (s)"),
    ]
    for h in h_values:
        for offset, name in ((0, "T1"), (1, "T2")):
            m = measure_overhead(env, name, h=h, tuples_per_entry=tuples_per_entry)
            series[offset].add(h, m.mean_overhead_seconds)
            series[offset + 2].add(h, m.overhead_per_tuple_seconds)
    if verbose:
        print(scale_note(_engine_scale_text(env)))
        print(format_series("h", series))
    return series


def run_fig10(
    scale_factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    h: int = 4,
    tuples_per_entry: int = 3,
    verbose: bool = True,
) -> list[Series]:
    """Figure 10: execution time vs. PMV overhead across scale factors.

    Four lines like the paper: execute T1/T2 (with simulated disk
    latency on the plans' physical page traffic) and PMV T1/T2
    overhead.  The paper's headline is the many-orders-of-magnitude
    gap between the two groups.
    """
    series = [
        Series("execute T1 (s)"),
        Series("PMV T1 (s)"),
        Series("execute T2 (s)"),
        Series("PMV T2 (s)"),
    ]
    last_env = None
    for s in scale_factors:
        env = build_experiment_database(scale_factor=s)
        last_env = env
        t1 = measure_overhead(env, "T1", h=h, tuples_per_entry=tuples_per_entry)
        t2 = measure_overhead(env, "T2", h=h, tuples_per_entry=tuples_per_entry)
        series[0].add(s, t1.mean_simulated_execution_seconds)
        series[1].add(s, t1.mean_overhead_seconds)
        series[2].add(s, t2.mean_simulated_execution_seconds)
        series[3].add(s, t2.mean_overhead_seconds)
    if verbose and last_env is not None:
        print(scale_note(_engine_scale_text(last_env)))
        print(format_series("s", series))
    return series


def run_o1_ablation(
    h_values: Sequence[int] = (2, 4, 6, 8),
    tuples_per_entry: int = 3,
    scale_factor: float = 1.0,
    query_pool: int = 4,
    verbose: bool = True,
) -> list[Series]:
    """O1-memoization ablation: overhead and memo hit rate vs. h.

    Runs each data point twice — decomposition memo on and off — on
    the same database.  The measured stream cycles through a small
    pool of Section 4.2 queries (``query_pool`` of them), so bound
    values repeat heavily — the regime the memo targets — and the
    with-memo overhead curve should sit at or below the without-memo
    curve, with the gap growing in h (decomposition cost is O(h)
    products).
    """
    env = build_experiment_database(scale_factor=scale_factor)
    series = [
        Series("T1 overhead, memo (s)"),
        Series("T1 overhead, no memo (s)"),
        Series("T1 memo hit rate"),
    ]
    for h in h_values:
        cached = measure_overhead(
            env,
            "T1",
            h=h,
            tuples_per_entry=tuples_per_entry,
            use_o1_cache=True,
            query_pool=query_pool,
        )
        uncached = measure_overhead(
            env,
            "T1",
            h=h,
            tuples_per_entry=tuples_per_entry,
            use_o1_cache=False,
            query_pool=query_pool,
        )
        series[0].add(h, cached.mean_overhead_seconds)
        series[1].add(h, uncached.mean_overhead_seconds)
        series[2].add(h, cached.o1_cache_hit_ratio)
    if verbose:
        print(scale_note(_engine_scale_text(env)))
        print(format_series("h", series))
    return series


def _engine_scale_text(env: ExperimentDatabase) -> str:
    c = env.dataset.config
    return (
        f"TPC-R downscale ×{c.downscale} (s={c.scale_factor}: "
        f"{env.dataset.row_counts['customer']} customers, "
        f"{env.dataset.row_counts['orders']} orders, "
        f"{env.dataset.row_counts['lineitem']} lineitems), "
        f"{engine_runs()} runs per point"
    )


# -- Figures 11-12: the analytical maintenance model ------------------------------------

DEFAULT_P_GRID = tuple(round(p * 0.1, 1) for p in range(0, 10)) + (0.99, 1.0)


def run_fig11(
    insert_fractions: Sequence[float] = DEFAULT_P_GRID,
    model: MaintenanceCostModel | None = None,
    verbose: bool = True,
) -> list[Series]:
    """Figure 11: total maintenance workload TW (I/Os) vs. p, MV vs PMV."""
    model = model or MaintenanceCostModel()
    mv = Series("MV TW (I/Os)")
    pmv = Series("PMV TW (I/Os)")
    for point in model.sweep(insert_fractions):
        mv.add(point.insert_fraction, point.mv_workload_ios)
        pmv.add(point.insert_fraction, point.pmv_workload_ios)
    if verbose:
        print(format_series("p", [mv, pmv]))
    return [mv, pmv]


def run_fig12(
    insert_fractions: Sequence[float] = DEFAULT_P_GRID,
    model: MaintenanceCostModel | None = None,
    verbose: bool = True,
) -> Series:
    """Figure 12: speedup ratio TW(MV)/TW(PMV) vs. p (∞ at p=1)."""
    model = model or MaintenanceCostModel()
    line = Series("speedup ratio")
    for point in model.sweep(insert_fractions):
        line.add(point.insert_fraction, point.speedup)
    if verbose:
        print(format_series("p", [line]))
    return line
