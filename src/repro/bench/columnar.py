"""The columnar batch-size sweep: ``batch_rows`` vs. PMV overhead.

Runs the hot-path Zipfian workload through the default (columnar)
executor once per candidate ``batch_rows`` setting.  The knob bounds
how many heap-page payload chunks a scan coalesces into one
:class:`~repro.engine.columns.ColumnBatch`; the sweep shows the
characteristic curve — tiny batches re-pay per-batch dispatch, huge
batches stop helping once every page fits in one batch — and proves
the answers do not depend on batching (row-for-row identity across
the sweep).

The summary is persisted as ``BENCH_columnar.json`` by the benchmark
gate in ``benchmarks/test_columnar_batch.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.figures import build_experiment_database
from repro.core.discretize import Discretization
from repro.core.executor import PMVExecutor
from repro.core.view import PartialMaterializedView
from repro.workload.queries import ZipfianQueryStream
from repro.workload.templates import make_t1

__all__ = ["ColumnarSweepConfig", "ColumnarSweepResult", "run_columnar_sweep"]

DEFAULT_BATCH_SIZES = (64, 256, 1024, 4096)


@dataclass(frozen=True)
class ColumnarSweepConfig:
    """Parameters of one batch-size sweep."""

    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES
    queries: int = 600
    repeats: int = 2
    alpha: float = 3.0
    values_per_slot: tuple[int, ...] = (2, 2)
    tuples_per_entry: int = 64
    max_entries: int = 20_000
    policy: str = "clock"
    distinct_order_dates: int = 20
    suppliers: int = 8
    seed: int = 99


@dataclass
class ColumnarSweepResult:
    """Outcome of :func:`run_columnar_sweep`."""

    config: ColumnarSweepConfig
    overhead_by_batch: dict[int, float]
    execution_by_batch: dict[int, float]
    rows_identical: bool
    result_rows: int
    runs_by_batch: dict[int, list[float]] = field(default_factory=dict)

    @property
    def best_batch_rows(self) -> int:
        return min(self.overhead_by_batch, key=self.overhead_by_batch.get)

    def as_dict(self) -> dict:
        """JSON-ready summary (persisted as ``BENCH_columnar.json``)."""
        c = self.config
        per_query = 1e6 / c.queries
        return {
            "benchmark": "columnar_batch_sweep",
            "config": {
                "batch_sizes": list(c.batch_sizes),
                "queries": c.queries,
                "repeats": c.repeats,
                "alpha": c.alpha,
                "values_per_slot": list(c.values_per_slot),
                "tuples_per_entry": c.tuples_per_entry,
                "max_entries": c.max_entries,
                "policy": c.policy,
                "distinct_order_dates": c.distinct_order_dates,
                "suppliers": c.suppliers,
                "seed": c.seed,
            },
            "sweep": [
                {
                    "batch_rows": batch_rows,
                    "overhead_seconds": self.overhead_by_batch[batch_rows],
                    "overhead_us_per_query": self.overhead_by_batch[batch_rows]
                    * per_query,
                    "execution_seconds": self.execution_by_batch[batch_rows],
                    "runs_seconds": self.runs_by_batch.get(batch_rows, []),
                }
                for batch_rows in c.batch_sizes
            ],
            "best_batch_rows": self.best_batch_rows,
            "rows_identical": self.rows_identical,
            "result_rows": self.result_rows,
        }


def _run_workload(config: ColumnarSweepConfig, batch_rows: int):
    """One full pass at one ``batch_rows`` setting.

    Returns ``(overhead_seconds, execution_seconds, row_values)``.
    The database is rebuilt per pass so no setting sees another's
    buffer pool or PMV state.
    """
    env = build_experiment_database(
        distinct_order_dates=config.distinct_order_dates,
        suppliers=config.suppliers,
    )
    env.database.batch_rows = batch_rows
    template = make_t1()
    view = PartialMaterializedView(
        template,
        Discretization(template),
        tuples_per_entry=config.tuples_per_entry,
        max_entries=config.max_entries,
        policy=config.policy,
    )
    executor = PMVExecutor(env.database, view)
    stream = ZipfianQueryStream(
        template,
        [env.dates, env.suppliers],
        alpha=config.alpha,
        values_per_slot=list(config.values_per_slot),
        seed=config.seed,
    )
    rows: list[list[tuple]] = []
    for query in stream.queries(config.queries):
        result = executor.execute(query)
        rows.append([tuple(row.values) for row in result.all_rows()])
    metrics = view.metrics
    return metrics.overhead_seconds, metrics.execution_seconds, rows


def run_columnar_sweep(
    config: ColumnarSweepConfig | None = None,
    verbose: bool = False,
) -> ColumnarSweepResult:
    """Sweep ``batch_rows`` over one workload, checking row identity."""
    if config is None:
        config = ColumnarSweepConfig()
    runs: dict[int, list[float]] = {b: [] for b in config.batch_sizes}
    execution: dict[int, float] = {}
    reference_rows: list[list[tuple]] | None = None
    rows_identical = True
    for _repeat in range(config.repeats):
        for batch_rows in config.batch_sizes:
            overhead, exec_seconds, rows = _run_workload(config, batch_rows)
            runs[batch_rows].append(overhead)
            previous = execution.get(batch_rows)
            if previous is None or exec_seconds < previous:
                execution[batch_rows] = exec_seconds
            if reference_rows is None:
                reference_rows = rows
            elif rows != reference_rows:
                rows_identical = False
            if verbose:
                print(
                    f"  batch_rows={batch_rows}: overhead {overhead * 1e3:.1f} ms, "
                    f"execution {exec_seconds * 1e3:.1f} ms"
                )
    result = ColumnarSweepResult(
        config=config,
        overhead_by_batch={b: min(r) for b, r in runs.items()},
        execution_by_batch=execution,
        rows_identical=rows_identical,
        result_rows=sum(len(r) for r in (reference_rows or [])),
        runs_by_batch=runs,
    )
    if verbose:
        print(f"  best batch_rows: {result.best_batch_rows}")
    return result
