"""Command-line experiment runner.

Regenerate any table/figure of the paper's evaluation directly::

    python -m repro.bench table1
    python -m repro.bench fig6 fig7
    python -m repro.bench all
    PMV_BENCH_SCALE=0.05 python -m repro.bench fig6
    python -m repro.bench fig10 --downscale 500 --runs 50

Scales default to the same knobs the pytest benchmarks use
(``PMV_BENCH_SCALE``, ``PMV_BENCH_DOWNSCALE``, ``PMV_BENCH_RUNS``);
the ``--scale/--downscale/--runs`` flags override them for the run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from dataclasses import asdict

from repro.bench import figures
from repro.bench.cdc import run_cdc
from repro.bench.endurance import run_endurance
from repro.bench.failover import sweep as run_failover_sweep
from repro.bench.nemesis import run_sweep as run_nemesis_sweep
from repro.bench.netload import run_netload
from repro.bench.overload import run_overload
from repro.bench.reporting import Series


def _run_overload(verbose: bool = True):
    return asdict(run_overload(verbose=verbose))


def _run_failover(verbose: bool = True):
    return asdict(run_failover_sweep([0, 1], verbose=verbose))


def _run_netload(verbose: bool = True):
    report = run_netload(verbose=verbose)
    payload = asdict(report)
    payload["ok"] = report.ok
    return payload


def _run_cdc(verbose: bool = True):
    report = run_cdc(verbose=verbose)
    payload = asdict(report)
    payload["ok"] = report.ok
    return payload


def _run_nemesis(verbose: bool = True):
    reports = run_nemesis_sweep([0, 1], verbose=verbose)
    return {
        "ok": all(report.ok for report in reports),
        "seeds": [dict(asdict(report), ok=report.ok) for report in reports],
    }


def _run_endurance(verbose: bool = True):
    report = run_endurance(verbose=verbose)
    payload = asdict(report)
    payload["ok"] = report.ok
    return payload


EXPERIMENTS = {
    "table1": figures.run_table1,
    "fig6": figures.run_fig6,
    "fig7": figures.run_fig7,
    "fig8": figures.run_fig8,
    "fig9": figures.run_fig9,
    "fig10": figures.run_fig10,
    "fig11": figures.run_fig11,
    "fig12": figures.run_fig12,
    "overload": _run_overload,
    "failover": _run_failover,
    "cdc": _run_cdc,
    "netload": _run_netload,
    "nemesis": _run_nemesis,
    "endurance": _run_endurance,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*EXPERIMENTS, "all"],
        help="which experiments to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        type=str,
        default=None,
        help="simulation scale fraction, or 'paper' (fig6/fig7)",
    )
    parser.add_argument(
        "--downscale",
        type=int,
        default=None,
        help="TPC-R row divisor; 1 = paper size (table1, fig8-10)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="measured queries per engine data point (fig8-10)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump every experiment's raw series to a JSON file",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        os.environ["PMV_BENCH_SCALE"] = args.scale
    if args.downscale is not None:
        os.environ["PMV_BENCH_DOWNSCALE"] = str(args.downscale)
    if args.runs is not None:
        os.environ["PMV_BENCH_RUNS"] = str(args.runs)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    collected: dict[str, object] = {}
    for name in names:
        print(f"\n===== {name} =====")
        started = time.perf_counter()
        collected[name] = _jsonable(EXPERIMENTS[name](verbose=True))
        print(f"[{name} done in {time.perf_counter() - started:.1f}s]")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"\nraw series written to {args.json}")
    return 0


def _jsonable(result):
    """Series objects -> plain dicts (floats kept; inf via default=str)."""
    if isinstance(result, Series):
        return {"label": result.label, "x": result.x, "y": result.y}
    if isinstance(result, list):
        return [_jsonable(item) for item in result]
    return result


if __name__ == "__main__":
    sys.exit(main())
