"""Slotted pages.

A :class:`Page` is the unit of I/O.  Records are stored in slots; a
deleted slot leaves a tombstone (``None``) so that :class:`RowId`\\ s of
other records stay stable, mirroring how real slotted pages keep slot
directories stable.  The page tracks its used byte count against a
fixed capacity so heap files fill realistically and I/O counts in the
benchmarks scale with data volume, as they would on a real system.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import PageFullError, StorageError

__all__ = ["Page", "PAGE_SIZE", "SLOT_OVERHEAD", "PAGE_HEADER"]

PAGE_SIZE = 8192
"""Default page capacity in bytes (PostgreSQL-style 8 KiB)."""

SLOT_OVERHEAD = 4
"""Bytes charged per slot for the slot-directory entry."""

PAGE_HEADER = 24
"""Bytes reserved for the page header."""


class Page:
    """A slotted page holding record payloads.

    Payloads are opaque to the page; the heap layer stores value tuples
    and accounts their size via the schema.  The page only enforces the
    byte budget and slot bookkeeping.
    """

    __slots__ = ("page_no", "capacity", "_slots", "_sizes", "_used", "dirty")

    def __init__(self, page_no: int, capacity: int = PAGE_SIZE) -> None:
        if capacity <= PAGE_HEADER:
            raise StorageError(f"page capacity {capacity} too small")
        self.page_no = page_no
        self.capacity = capacity
        self._slots: list[Any] = []
        self._sizes: list[int] = []
        self._used = PAGE_HEADER
        self.dirty = False

    # -- capacity ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently consumed, including header and slot entries."""
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    def fits(self, payload_size: int) -> bool:
        """Whether a record of ``payload_size`` bytes fits on this page."""
        return payload_size + SLOT_OVERHEAD <= self.free_bytes

    # -- record operations ---------------------------------------------------

    def insert(self, payload: Any, payload_size: int) -> int:
        """Insert a record; return its slot number.

        Raises :class:`PageFullError` when the byte budget is exceeded.
        Tombstoned slots are reused when the new payload fits in the
        page's remaining budget (slot-directory space was already paid).
        """
        if payload is None:
            raise StorageError("payload may not be None (None marks tombstones)")
        cost = payload_size + SLOT_OVERHEAD
        # Reuse a tombstone first: its slot entry is already accounted.
        for slot_no, existing in enumerate(self._slots):
            if existing is None:
                if payload_size > self.free_bytes:
                    raise PageFullError(
                        f"page {self.page_no}: {payload_size}B > {self.free_bytes}B free"
                    )
                self._slots[slot_no] = payload
                self._sizes[slot_no] = payload_size
                self._used += payload_size
                self.dirty = True
                return slot_no
        if cost > self.free_bytes:
            raise PageFullError(
                f"page {self.page_no}: {cost}B > {self.free_bytes}B free"
            )
        self._slots.append(payload)
        self._sizes.append(payload_size)
        self._used += cost
        self.dirty = True
        return len(self._slots) - 1

    def read(self, slot_no: int) -> Any:
        """Return the payload in ``slot_no``; ``None`` if tombstoned."""
        if not 0 <= slot_no < len(self._slots):
            raise StorageError(f"page {self.page_no}: bad slot {slot_no}")
        return self._slots[slot_no]

    def delete(self, slot_no: int) -> Any:
        """Tombstone ``slot_no`` and return the removed payload."""
        payload = self.read(slot_no)
        if payload is None:
            raise StorageError(f"page {self.page_no}: slot {slot_no} already deleted")
        self._slots[slot_no] = None
        self._used -= self._sizes[slot_no]
        self._sizes[slot_no] = 0
        self.dirty = True
        return payload

    def update(self, slot_no: int, payload: Any, payload_size: int) -> None:
        """Replace the payload in ``slot_no`` in place.

        Raises :class:`PageFullError` if the new payload does not fit in
        the page's byte budget; callers then relocate the record.
        """
        old = self.read(slot_no)
        if old is None:
            raise StorageError(f"page {self.page_no}: slot {slot_no} is deleted")
        growth = payload_size - self._sizes[slot_no]
        if growth > self.free_bytes:
            raise PageFullError(
                f"page {self.page_no}: update grows by {growth}B > {self.free_bytes}B free"
            )
        self._slots[slot_no] = payload
        self._used += growth
        self._sizes[slot_no] = payload_size
        self.dirty = True

    # -- iteration -----------------------------------------------------------

    def live_slots(self) -> Iterator[tuple[int, Any]]:
        """Yield ``(slot_no, payload)`` for every non-tombstoned slot."""
        for slot_no, payload in enumerate(self._slots):
            if payload is not None:
                yield slot_no, payload

    @property
    def live_count(self) -> int:
        return sum(1 for payload in self._slots if payload is not None)

    @property
    def slot_count(self) -> int:
        """Total slots including tombstones."""
        return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Page(no={self.page_no}, live={self.live_count}, "
            f"used={self._used}/{self.capacity})"
        )
