"""Simulated disk manager with I/O accounting.

The disk manager owns every page in the database and charges one
"physical read" or "physical write" per page transferred.  The buffer
pool sits above it; a buffer-pool hit costs nothing here.  The
experiment harness reads :class:`IOStats` snapshots to report I/O
counts (Figures 10–12 in the paper report I/O-dominated costs), and an
optional per-I/O latency model converts counts to simulated seconds for
experiments that want a time axis independent of Python's speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.page import PAGE_SIZE, Page
from repro.errors import DiskFullError, StorageError

__all__ = ["IOStats", "DiskManager", "LatencyModel"]


@dataclass
class LatencyModel:
    """Converts I/O counts to simulated seconds.

    Defaults approximate a 2007-era disk like the paper's testbed:
    ~5 ms per random page read/write, and a small CPU charge per page
    touched in memory so in-memory work is cheap but not free.
    """

    read_seconds: float = 0.005
    write_seconds: float = 0.005
    memory_touch_seconds: float = 1e-7

    def cost(self, reads: int, writes: int, memory_touches: int = 0) -> float:
        """Simulated seconds for the given operation counts."""
        return (
            reads * self.read_seconds
            + writes * self.write_seconds
            + memory_touches * self.memory_touch_seconds
        )


@dataclass
class IOStats:
    """Counters for physical page traffic."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes, self.allocations)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Traffic since ``earlier`` (an older snapshot)."""
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.allocations - earlier.allocations,
        )

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.reads + other.reads,
            self.writes + other.writes,
            self.allocations + other.allocations,
        )


@dataclass
class DiskManager:
    """Holds all pages "on disk" and counts page transfers.

    In a real system this would serialize pages to a file; here pages
    live in a dict, but every read/write through this interface is
    charged, which is what the experiments measure.
    """

    page_size: int = PAGE_SIZE
    stats: IOStats = field(default_factory=IOStats)
    _pages: dict[int, Page] = field(default_factory=dict)
    _next_page_no: int = 0
    # Optional fault-site hook (repro.faults), fired as "disk.full" by
    # the pre-statement space probe.  None (and zero-cost) in production.
    fault_check: Callable[[str], Any] | None = field(
        default=None, repr=False, compare=False
    )

    def ensure_space(self) -> None:
        """Pre-statement space probe for page writes.

        Pages live in a dict here, so the only way this simulated disk
        fills up is through the ``disk.full`` fault site — but the
        engine calls it before every DML statement exactly where a real
        disk manager would reserve its pages, so the refusal path
        (:class:`~repro.errors.DiskFullError` before anything mutates)
        is the same one a real ENOSPC would take.
        """
        if self.fault_check is not None and self.fault_check("disk.full"):
            raise DiskFullError(
                "no space left on device (page write reserve)", site="disk.full"
            )

    def allocate_page(self) -> Page:
        """Create a fresh empty page; charged as one write (formatting)."""
        page = Page(self._next_page_no, capacity=self.page_size)
        self._pages[page.page_no] = page
        self._next_page_no += 1
        self.stats.allocations += 1
        self.stats.writes += 1
        return page

    def read_page(self, page_no: int) -> Page:
        """Fetch a page from disk; charged as one read."""
        page = self._fetch(page_no)
        self.stats.reads += 1
        return page

    def write_page(self, page: Page) -> None:
        """Flush a page back to disk; charged as one write."""
        if page.page_no not in self._pages:
            raise StorageError(f"page {page.page_no} was never allocated")
        self._store(page)
        self.stats.writes += 1
        page.dirty = False

    # -- I/O seams ----------------------------------------------------------
    #
    # The physical transfer itself, separated from validation and
    # accounting so a subclass can interpose failures at exactly the
    # point a real device would fail (see repro.faults.inject).

    def _fetch(self, page_no: int) -> Page:
        try:
            return self._pages[page_no]
        except KeyError:
            raise StorageError(f"no such page {page_no}") from None

    def _store(self, page: Page) -> None:
        """Commit a page image to the backing store.  Pages live in a
        dict, so the base implementation has nothing to move — but this
        is where an injected torn or failed write happens."""

    def free_page(self, page_no: int) -> None:
        """Drop a page (used by tests and truncation)."""
        self._pages.pop(page_no, None)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def exists(self, page_no: int) -> bool:
        return page_no in self._pages
