"""A small SQL-ish parser for ``qt``-form templates and queries.

The paper writes its templates and queries in SQL (Figure 1, Section
4.2); this module accepts that surface syntax so examples and tests can
say what the paper says:

Template definition — slot positions are marked with ``?``::

    parse_template("Eqt",
        "select r.a, s.e from r, s "
        "where r.c = s.d and r.f = ? and s.g = ?")

    # interval-form slot:
    parse_template("offers",
        "select related.item, sale.item from related, sale "
        "where related.related_item = sale.item "
        "and related.item = ? and sale.discount between ?")

Concrete query — a full ``qt``-form statement, matched against a
template and bound::

    parse_query(template,
        "select r.a, s.e from r, s "
        "where r.c = s.d and (r.f = 1 or r.f = 3) "
        "and (s.g = 2 or s.g = 4)")

Supported predicate forms: equi-joins ``a.x = b.y``; parameterless
fixed conditions ``a.x = <literal>``; equality disjunctions
``(col = v1 or col = v2 …)``; interval disjunctions
``(col between v and w or col between …)`` (closed intervals, the
common form-based case).  Literals are integers, floats, and
single-quoted strings.
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    SelectionCondition,
)
from repro.engine.template import Query, QueryTemplate, SelectionSlot, SlotForm
from repro.errors import ParseError

__all__ = ["parse_template", "parse_query", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<qident>[A-Za-z_][A-Za-z_0-9]*\.[A-Za-z_][A-Za-z_0-9]*)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<punct>[(),=?])
      | (?P<bad>\S)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "or", "between"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.value!r}"


def tokenize(text: str) -> list[_Token]:
    """Lex ``text`` into keyword/identifier/literal/punct tokens."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            break
        pos = match.end()
        if match.group("bad"):
            raise ParseError(f"unexpected character {match.group('bad')!r}")
        if match.group("string") is not None:
            raw = match.group("string")[1:-1]
            tokens.append(_Token("literal", raw.replace("\\'", "'")))
        elif match.group("number") is not None:
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("literal", value))
        elif match.group("qident") is not None:
            tokens.append(_Token("qident", match.group("qident")))
        elif match.group("ident") is not None:
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", word.lower()))
            else:
                tokens.append(_Token("ident", word))
        else:
            tokens.append(_Token("punct", match.group("punct")))
    return tokens


class _Parser:
    """Recursive-descent over the token list."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of statement")
        self.pos += 1
        return token

    def expect(self, kind: str, value: Any = None) -> _Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind!r}, got {token.value!r}"
            )
        return token

    def accept(self, kind: str, value: Any = None) -> bool:
        token = self.peek()
        if token is not None and token.kind == kind and (
            value is None or token.value == value
        ):
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- shared clauses ----------------------------------------------------------

    def parse_select_from(self) -> tuple[list[str], list[str]]:
        self.expect("keyword", "select")
        select_list = [self.expect("qident").value]
        while self.accept("punct", ","):
            select_list.append(self.expect("qident").value)
        self.expect("keyword", "from")
        relations = [self.expect("ident").value]
        while self.accept("punct", ","):
            relations.append(self.expect("ident").value)
        self.expect("keyword", "where")
        return select_list, relations

    # -- WHERE conjuncts -------------------------------------------------------------

    def parse_conjuncts(self) -> list[list[dict]]:
        """The WHERE clause as a list of conjuncts, each a list of
        disjunct dicts (one dict for an unparenthesized simple term)."""
        conjuncts = [self.parse_conjunct()]
        while self.accept("keyword", "and"):
            conjuncts.append(self.parse_conjunct())
        if not self.at_end():
            raise ParseError(f"trailing tokens after WHERE clause: {self.peek()!r}")
        return conjuncts

    def parse_conjunct(self) -> list[dict]:
        if self.accept("punct", "("):
            disjuncts = [self.parse_term()]
            while self.accept("keyword", "or"):
                disjuncts.append(self.parse_term())
            self.expect("punct", ")")
            return disjuncts
        return [self.parse_term()]

    def parse_term(self) -> dict:
        column = self.expect("qident").value
        token = self.next()
        if token.kind == "punct" and token.value == "=":
            rhs = self.next()
            if rhs.kind == "qident":
                return {"kind": "join", "left": column, "right": rhs.value}
            if rhs.kind == "literal":
                return {"kind": "eq", "column": column, "value": rhs.value}
            if rhs.kind == "punct" and rhs.value == "?":
                return {"kind": "slot", "column": column, "form": SlotForm.EQUALITY}
            raise ParseError(f"bad right-hand side {rhs.value!r}")
        if token.kind == "keyword" and token.value == "between":
            if self.accept("punct", "?"):
                return {"kind": "slot", "column": column, "form": SlotForm.INTERVAL}
            low = self.expect("literal").value
            self.expect("keyword", "and")
            high = self.expect("literal").value
            return {"kind": "between", "column": column, "low": low, "high": high}
        raise ParseError(f"expected '=' or 'between' after {column!r}")


def parse_template(name: str, text: str) -> QueryTemplate:
    """Parse a template definition with ``?`` slot markers."""
    parser = _Parser(text)
    select_list, relations = parser.parse_select_from()
    joins: list[JoinEquality] = []
    slots: list[SelectionSlot] = []
    fixed: list[SelectionCondition] = []
    for conjunct in parser.parse_conjuncts():
        if len(conjunct) != 1:
            raise ParseError("template definitions take no OR-disjunctions; use '?'")
        term = conjunct[0]
        if term["kind"] == "join":
            left_rel, left_col = term["left"].split(".", 1)
            right_rel, right_col = term["right"].split(".", 1)
            joins.append(JoinEquality(left_rel, left_col, right_rel, right_col))
        elif term["kind"] == "slot":
            relation = term["column"].split(".", 1)[0]
            slots.append(SelectionSlot(relation, term["column"], term["form"]))
        elif term["kind"] == "eq":
            fixed.append(EqualityDisjunction(term["column"], [term["value"]]))
        else:  # between with literals: a fixed single-interval condition
            fixed.append(
                IntervalDisjunction(
                    term["column"],
                    [Interval(term["low"], term["high"], True, True)],
                )
            )
    return QueryTemplate(
        name=name,
        relations=relations,
        select_list=select_list,
        joins=joins,
        slots=slots,
        fixed_conditions=fixed,
    )


def parse_query(template: QueryTemplate, text: str) -> Query:
    """Parse a concrete ``qt``-form query and bind it to ``template``.

    The statement's select list, relations, joins, and fixed conditions
    must match the template; the remaining conjuncts must bind exactly
    one disjunction per template slot.
    """
    parser = _Parser(text)
    select_list, relations = parser.parse_select_from()
    if tuple(relations) != template.relations:
        raise ParseError(
            f"relations {relations} do not match template {list(template.relations)}"
        )
    if tuple(select_list) != template.select_list:
        raise ParseError(
            f"select list {select_list} does not match template "
            f"{list(template.select_list)}"
        )
    slot_columns = {slot.column for slot in template.slots}
    expected_joins = {(j.qualified_left(), j.qualified_right()) for j in template.joins}
    seen_joins: set[tuple[str, str]] = set()
    conditions: list[SelectionCondition] = []
    for conjunct in parser.parse_conjuncts():
        kinds = {term["kind"] for term in conjunct}
        if kinds == {"join"}:
            (term,) = conjunct
            pair = (term["left"], term["right"])
            if pair not in expected_joins and pair[::-1] not in expected_joins:
                raise ParseError(f"join {pair[0]} = {pair[1]} not in template")
            seen_joins.add(pair if pair in expected_joins else pair[::-1])
            continue
        columns = {term["column"] for term in conjunct if "column" in term}
        if len(columns) != 1:
            raise ParseError("each disjunction must constrain a single attribute")
        (column,) = columns
        if column not in slot_columns:
            # Must be one of the template's fixed conditions; accept and
            # verify it matches.
            _check_fixed(template, conjunct, column)
            continue
        if kinds == {"eq"}:
            conditions.append(
                EqualityDisjunction(column, [term["value"] for term in conjunct])
            )
        elif kinds == {"between"}:
            conditions.append(
                IntervalDisjunction(
                    column,
                    [
                        Interval(term["low"], term["high"], True, True)
                        for term in conjunct
                    ],
                )
            )
        else:
            raise ParseError(
                f"disjunction on {column!r} mixes equality and interval terms"
            )
    if seen_joins != expected_joins:
        missing = expected_joins - seen_joins
        raise ParseError(f"query is missing join term(s): {sorted(missing)}")
    return template.bind(conditions)


def _check_fixed(
    template: QueryTemplate, conjunct: Sequence[dict], column: str
) -> None:
    """Verify a non-slot conjunct restates the template's fixed
    condition on ``column`` (same values/intervals, not just the same
    attribute)."""
    for fixed in template.fixed_conditions:
        if fixed.column != column:
            continue
        if isinstance(fixed, EqualityDisjunction):
            stated = {term.get("value") for term in conjunct if term["kind"] == "eq"}
            if len(stated) == len(conjunct) and stated == set(fixed.values):
                return
        else:
            stated_intervals = [
                Interval(term["low"], term["high"], True, True)
                for term in conjunct
                if term["kind"] == "between"
            ]
            if len(stated_intervals) == len(conjunct) and set(stated_intervals) == set(
                fixed.intervals
            ):
                return
        raise ParseError(
            f"condition on {column!r} does not match the template's fixed "
            f"condition ({fixed})"
        )
    raise ParseError(
        f"{column!r} is neither a template slot nor a fixed condition"
    )
