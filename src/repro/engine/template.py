"""Query templates (the paper's ``qt`` form) and bound queries.

A :class:`QueryTemplate` captures everything that is fixed across the
queries of one form-based application screen:

- the select list ``Ls``;
- the joined relations ``R1 … Rn`` and the equi-join terms of ``Cjoin``
  (plus any parameterless single-relation conditions folded into
  ``Cjoin``);
- the *selection slots*: which attribute each ``Ci`` of ``Cselect``
  constrains and whether it takes the equality or the interval form.

A :class:`Query` binds one concrete disjunction per slot.  The PMV for
a template is defined against the *expanded* select list ``Ls'``
(``Ls`` plus every ``Cselect`` attribute), per Section 3.2: the
attributes in ``Cselect`` must appear in stored result tuples so the
basic condition part can be recovered from the tuple.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.engine.predicate import (
    EqualityDisjunction,
    IntervalDisjunction,
    JoinEquality,
    SelectionCondition,
    SelectionConjunction,
)
from repro.errors import ConditionError, ViewDefinitionError

__all__ = ["SlotForm", "SelectionSlot", "QueryTemplate", "Query"]


class SlotForm(enum.Enum):
    """Which disjunctive form a ``Ci`` takes (Section 2.1)."""

    EQUALITY = "equality"
    INTERVAL = "interval"


@dataclass(frozen=True)
class SelectionSlot:
    """One parameterized ``Ci``: an attribute plus its form.

    ``column`` is the qualified name (``"orders.orderdate"``) so slot
    predicates evaluate against both base-relation rows and join output
    rows.
    """

    relation: str
    column: str
    form: SlotForm

    def __post_init__(self) -> None:
        if "." not in self.column:
            raise ConditionError(
                f"slot column must be qualified ('rel.col'), got {self.column!r}"
            )
        rel = self.column.split(".", 1)[0]
        if rel != self.relation:
            raise ConditionError(
                f"slot column {self.column!r} does not belong to relation {self.relation!r}"
            )

    @property
    def bare_column(self) -> str:
        return self.column.split(".", 1)[1]


class QueryTemplate:
    """The paper's ``qt``: ``select Ls from R1..Rn where Cjoin and Cselect``.

    Parameters
    ----------
    name:
        Template identifier (used to name its PMV).
    relations:
        Relation names ``R1 … Rn`` in join order.
    select_list:
        Qualified output attributes ``Ls``.
    joins:
        Equi-join terms of ``Cjoin``.
    slots:
        The parameterized ``Cselect`` slots, in the (d1, …, dm) order
        used for condition parts.
    fixed_conditions:
        Parameterless single-relation conditions folded into ``Cjoin``
        (e.g. ``R1.b = 100``).
    """

    def __init__(
        self,
        name: str,
        relations: Sequence[str],
        select_list: Sequence[str],
        joins: Sequence[JoinEquality],
        slots: Sequence[SelectionSlot],
        fixed_conditions: Sequence[SelectionCondition] = (),
    ) -> None:
        if not relations:
            raise ViewDefinitionError("template needs at least one relation")
        if len(set(relations)) != len(relations):
            raise ViewDefinitionError("duplicate relations in template")
        if not slots:
            raise ViewDefinitionError("template needs at least one selection slot")
        relation_set = set(relations)
        for slot in slots:
            if slot.relation not in relation_set:
                raise ViewDefinitionError(
                    f"slot on {slot.column!r}: relation not in template"
                )
        for join in joins:
            if join.left_relation not in relation_set or join.right_relation not in relation_set:
                raise ViewDefinitionError(f"join {join} references unknown relation")
        if len(relations) > 1 and len(joins) < len(relations) - 1:
            raise ViewDefinitionError(
                f"{len(relations)} relations need at least {len(relations) - 1} join terms"
            )
        slot_columns = [s.column for s in slots]
        if len(set(slot_columns)) != len(slot_columns):
            raise ViewDefinitionError("each attribute may appear in only one slot")
        for item in select_list:
            if "." not in item or item.split(".", 1)[0] not in relation_set:
                raise ViewDefinitionError(
                    f"select list items must be qualified with a template "
                    f"relation; got {item!r}"
                )
        self.name = name
        self.relations = tuple(relations)
        self.select_list = tuple(select_list)
        self.joins = tuple(joins)
        self.slots = tuple(slots)
        self.fixed_conditions = tuple(fixed_conditions)

    # -- derived ---------------------------------------------------------------

    @property
    def arity(self) -> int:
        """The paper's m: number of Cselect slots."""
        return len(self.slots)

    def expanded_select_list(self) -> tuple[str, ...]:
        """``Ls'``: Ls plus every Cselect attribute (Section 3.2)."""
        out = list(self.select_list)
        present = set(out)
        for slot in self.slots:
            if slot.column not in present:
                out.append(slot.column)
                present.add(slot.column)
        return tuple(out)

    def slot_index(self, column: str) -> int:
        """Position of the slot constraining ``column``."""
        for i, slot in enumerate(self.slots):
            if slot.column == column:
                return i
        raise ConditionError(f"template {self.name!r} has no slot on {column!r}")

    # -- binding ------------------------------------------------------------------

    def bind(self, conditions: Sequence[SelectionCondition]) -> "Query":
        """Bind one disjunction per slot, producing a concrete query.

        Conditions are matched to slots by column and checked against
        the slot's declared form.
        """
        if len(conditions) != len(self.slots):
            raise ConditionError(
                f"template {self.name!r} has {len(self.slots)} slots, "
                f"got {len(conditions)} conditions"
            )
        by_column = {c.column: c for c in conditions}
        if len(by_column) != len(conditions):
            raise ConditionError("duplicate condition columns in bind()")
        ordered: list[SelectionCondition] = []
        for slot in self.slots:
            cond = by_column.get(slot.column)
            if cond is None:
                raise ConditionError(f"no condition bound for slot {slot.column!r}")
            if slot.form is SlotForm.EQUALITY and not isinstance(cond, EqualityDisjunction):
                raise ConditionError(f"slot {slot.column!r} requires the equality form")
            if slot.form is SlotForm.INTERVAL and not isinstance(cond, IntervalDisjunction):
                raise ConditionError(f"slot {slot.column!r} requires the interval form")
            ordered.append(cond)
        return Query(self, SelectionConjunction(ordered))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryTemplate({self.name!r}, relations={self.relations}, "
            f"slots={[s.column for s in self.slots]})"
        )


@dataclass(frozen=True)
class Query:
    """A concrete query: a template plus one bound ``Cselect``."""

    template: QueryTemplate
    cselect: SelectionConjunction

    def __post_init__(self) -> None:
        expected = tuple(s.column for s in self.template.slots)
        if self.cselect.columns() != expected:
            raise ConditionError(
                f"Cselect columns {self.cselect.columns()} do not match "
                f"template slots {expected}"
            )

    @property
    def combination_factor(self) -> int:
        """The paper's h for this query (Section 4.2)."""
        return self.cselect.combination_factor()

    def __str__(self) -> str:
        joins = " and ".join(str(j) for j in self.template.joins)
        fixed = " and ".join(f"({c})" for c in self.template.fixed_conditions)
        where = " and ".join(part for part in (joins, fixed, str(self.cselect)) if part)
        return (
            f"select {', '.join(self.template.select_list)} "
            f"from {', '.join(self.template.relations)} where {where}"
        )
