"""Table and column statistics for the planner.

The paper runs "the PostgreSQL statistics collection program on all the
relations" before its experiments (Section 4.2); this module is our
equivalent of ``ANALYZE``.  :class:`StatisticsCollector` scans a
relation once and records, per column:

- distinct-value count and null fraction;
- min/max (for orderable columns);
- a small equi-depth histogram plus exact counts for the most common
  values (PostgreSQL-style MCVs).

The planner uses :meth:`ColumnStatistics.equality_selectivity` and
:meth:`ColumnStatistics.interval_selectivity` to pick the most
selective indexed slot as the driving access path, instead of the first
one in template order.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.datatypes import Infinity
from repro.engine.heap import HeapRelation
from repro.engine.predicate import Interval
from repro.errors import EngineError

__all__ = ["ColumnStatistics", "TableStatistics", "StatisticsCollector"]


@dataclass
class ColumnStatistics:
    """Distribution summary of one column."""

    column: str
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    most_common: dict[Any, int] = field(default_factory=dict)
    histogram_bounds: list[Any] = field(default_factory=list)

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def equality_selectivity(self, value: Any) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if self.row_count == 0:
            return 0.0
        if value in self.most_common:
            return self.most_common[value] / self.row_count
        # Uniformity over the non-MCV remainder.
        mcv_rows = sum(self.most_common.values())
        rest_rows = max(self.row_count - self.null_count - mcv_rows, 0)
        rest_distinct = max(self.distinct_count - len(self.most_common), 1)
        return (rest_rows / rest_distinct) / self.row_count if rest_rows else 0.0

    def interval_selectivity(self, interval: Interval) -> float:
        """Estimated fraction of rows with ``column`` in ``interval``.

        Uses the equi-depth histogram: each bucket holds ~1/(buckets)
        of the non-null rows, so the covered-bucket fraction estimates
        the selectivity.
        """
        if self.row_count == 0 or len(self.histogram_bounds) < 2:
            return 1.0
        bounds = self.histogram_bounds
        buckets = len(bounds) - 1
        low = bounds[0] if isinstance(interval.low, Infinity) else interval.low
        high = bounds[-1] if isinstance(interval.high, Infinity) else interval.high
        if high < bounds[0] or low > bounds[-1]:
            return 0.0
        lo_idx = bisect.bisect_left(bounds, low)
        hi_idx = bisect.bisect_right(bounds, high)
        covered = max(hi_idx - lo_idx, 1)  # partial buckets count as one
        fraction = min(covered / buckets, 1.0)
        return fraction * (1.0 - self.null_fraction)

    def disjunction_selectivity(self, values: Sequence[Any]) -> float:
        """Selectivity of ``column IN values`` (capped at 1)."""
        return min(sum(self.equality_selectivity(v) for v in values), 1.0)


@dataclass
class TableStatistics:
    """Statistics for one relation."""

    relation: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        bare = name.split(".", 1)[1] if "." in name else name
        try:
            return self.columns[bare]
        except KeyError:
            raise EngineError(
                f"no statistics for column {name!r} of {self.relation!r}"
            ) from None


class StatisticsCollector:
    """Collects and stores per-relation statistics (our ``ANALYZE``)."""

    def __init__(self, mcv_count: int = 10, histogram_buckets: int = 20) -> None:
        if mcv_count < 0 or histogram_buckets < 2:
            raise EngineError("mcv_count >= 0 and histogram_buckets >= 2 required")
        self.mcv_count = mcv_count
        self.histogram_buckets = histogram_buckets
        self._tables: dict[str, TableStatistics] = {}

    # -- collection --------------------------------------------------------------

    def analyze(self, relation: HeapRelation) -> TableStatistics:
        """Scan ``relation`` once and (re)build its statistics."""
        names = relation.schema.names()
        counters: dict[str, Counter] = {name: Counter() for name in names}
        nulls: dict[str, int] = {name: 0 for name in names}
        row_count = 0
        for row in relation.scan_rows():
            row_count += 1
            for name, value in zip(names, row.values):
                if value is None:
                    nulls[name] += 1
                else:
                    counters[name][value] += 1
        table = TableStatistics(relation=relation.name, row_count=row_count)
        for name in names:
            counter = counters[name]
            stats = ColumnStatistics(
                column=name,
                row_count=row_count,
                null_count=nulls[name],
                distinct_count=len(counter),
            )
            if counter:
                ordered = sorted(counter)
                stats.min_value = ordered[0]
                stats.max_value = ordered[-1]
                stats.most_common = dict(counter.most_common(self.mcv_count))
                stats.histogram_bounds = self._equi_depth_bounds(counter, ordered)
            table.columns[name] = stats
        self._tables[relation.name] = table
        return table

    def analyze_all(self, relations: Sequence[HeapRelation]) -> None:
        for relation in relations:
            self.analyze(relation)

    def _equi_depth_bounds(self, counter: Counter, ordered: list[Any]) -> list[Any]:
        """Bucket bounds such that each bucket holds ~equal row mass."""
        total = sum(counter.values())
        if total == 0:
            return []
        target = total / self.histogram_buckets
        bounds = [ordered[0]]
        mass = 0.0
        for value in ordered:
            mass += counter[value]
            if mass >= target and value > bounds[-1]:
                bounds.append(value)
                mass = 0.0
        if ordered[-1] > bounds[-1]:
            bounds.append(ordered[-1])
        return bounds

    # -- lookup -------------------------------------------------------------------

    def table(self, relation_name: str) -> TableStatistics:
        try:
            return self._tables[relation_name]
        except KeyError:
            raise EngineError(
                f"relation {relation_name!r} has not been analyzed"
            ) from None

    def has_table(self, relation_name: str) -> bool:
        return relation_name in self._tables
