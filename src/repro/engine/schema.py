"""Relation schemas for the mini RDBMS substrate.

A :class:`Schema` is an ordered list of named, typed columns.  Column
names may be qualified (``"orders.orderkey"``) or bare
(``"orderkey"``); lookup accepts either form as long as it is
unambiguous.  Schemas are immutable and hashable so they can be shared
between a relation, its indexes, and derived views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.engine.datatypes import DataType
from repro.errors import SchemaError, UnknownColumnError

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single named, typed column.

    Parameters
    ----------
    name:
        Bare column name (no relation qualifier).
    dtype:
        The column's :class:`~repro.engine.datatypes.DataType`.
    nullable:
        Whether NULL values are accepted on insert.
    """

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(f"invalid bare column name {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of columns.

    Parameters
    ----------
    columns:
        The columns, in relation order.
    relation_name:
        Optional relation this schema belongs to; used to resolve
        qualified column references like ``"orders.custkey"``.
    """

    columns: tuple[Column, ...]
    relation_name: str | None = None
    _positions: dict[str, int] = field(
        default=None, repr=False, compare=False, hash=False  # type: ignore[assignment]
    )

    def __init__(
        self,
        columns: Sequence[Column],
        relation_name: str | None = None,
    ) -> None:
        cols = tuple(columns)
        if not cols:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "relation_name", relation_name)
        positions = {c.name: i for i, c in enumerate(cols)}
        if relation_name:
            for i, c in enumerate(cols):
                positions[f"{relation_name}.{c.name}"] = i
        object.__setattr__(self, "_positions", positions)

    # -- lookup ------------------------------------------------------------

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name``.

        Accepts bare or qualified names.  Raises
        :class:`UnknownColumnError` if the column does not exist.
        """
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownColumnError(
                f"no column {name!r} in schema {self.qualified_names()}"
            ) from None

    def column(self, name: str) -> Column:
        """Return the :class:`Column` object for ``name``."""
        return self.columns[self.position(name)]

    def has_column(self, name: str) -> bool:
        """Whether ``name`` (bare or qualified) resolves in this schema."""
        return name in self._positions

    def names(self) -> tuple[str, ...]:
        """Bare column names, in order."""
        return tuple(c.name for c in self.columns)

    def qualified_names(self) -> tuple[str, ...]:
        """Qualified names if a relation name is set, bare otherwise."""
        if self.relation_name:
            return tuple(f"{self.relation_name}.{c.name}" for c in self.columns)
        return self.names()

    # -- construction helpers ----------------------------------------------

    def project(self, names: Sequence[str], relation_name: str | None = None) -> "Schema":
        """A new schema containing only ``names``, in the given order.

        Qualified names stay resolvable on the result: each requested
        name is kept as an alias, and bare-name collisions between
        different source columns are disambiguated.
        """
        picked = [self.column(n) for n in names]
        out, used = [], set()
        for requested, col in zip(names, picked):
            bare = col.name
            if bare in used:
                bare = requested.replace(".", "_")
                if bare in used:
                    raise SchemaError(f"cannot disambiguate projected column {requested!r}")
            out.append(Column(bare, col.dtype, col.nullable))
            used.add(bare)
        result = Schema(out, relation_name=relation_name)
        for pos, requested in enumerate(names):
            result._positions.setdefault(requested, pos)
        return result

    def rename(self, relation_name: str | None) -> "Schema":
        """A copy of this schema bound to a different relation name."""
        return Schema(self.columns, relation_name=relation_name)

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (e.g. for join outputs).

        Bare-name collisions between the two sides are renamed
        ``<relation>_<column>``; every alias known on either input
        (including qualified ``relation.column`` forms) stays
        resolvable on the result, so predicates written against base
        relations evaluate directly on join output rows.
        """
        out: list[Column] = list(self.columns)
        out_names = set(self.names())
        for col in other.columns:
            name = col.name
            if name in out_names:
                qualifier = other.relation_name or "right"
                name = f"{qualifier}_{col.name}"
                if name in out_names:
                    raise SchemaError(f"cannot disambiguate column {col.name!r}")
            out.append(Column(name, col.dtype, col.nullable))
            out_names.add(name)
        result = Schema(out, relation_name=None)
        offset = len(self.columns)
        for key, pos in self._positions.items():
            result._positions.setdefault(key, pos)
        for key, pos in other._positions.items():
            result._positions.setdefault(key, pos + offset)
        return result

    # -- validation ----------------------------------------------------------

    def validate_values(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Type-check a full row of values against this schema."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        out = []
        for col, value in zip(self.columns, values):
            if value is None and not col.nullable:
                raise SchemaError(f"column {col.name!r} is NOT NULL")
            out.append(col.dtype.validate(value))
        return tuple(out)

    # -- dunder --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __hash__(self) -> int:
        return hash((self.columns, self.relation_name))

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, Schema)
            and self.columns == other.columns
            and self.relation_name == other.relation_name
        )
