"""Buffer pool with CLOCK eviction.

The buffer pool caches a bounded number of pages between the executor
and the :class:`~repro.engine.disk.DiskManager`.  Page access goes
through :meth:`BufferPool.fetch`, which returns a pinned page; callers
unpin when done.  Eviction uses the classic CLOCK (second-chance)
algorithm — the same algorithm the paper uses to manage basic condition
parts inside a PMV, implemented independently there so the PMV layer
has no dependency on the storage stack.

Hit/miss counters let experiments confirm that PMV probes run without
physical I/O while full query execution does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.disk import DiskManager
from repro.engine.page import Page
from repro.errors import BufferPoolError

__all__ = ["BufferPool", "BufferPoolStats"]


@dataclass
class BufferPoolStats:
    """Logical page-request accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class _Frame:
    __slots__ = ("page", "pin_count", "referenced")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pin_count = 0
        self.referenced = True


class BufferPool:
    """A fixed-capacity page cache with CLOCK replacement.

    Parameters
    ----------
    disk:
        The backing disk manager; all misses and dirty-page flushes go
        through it (and are charged to its I/O stats).
    capacity:
        Maximum number of resident pages.  The paper's PostgreSQL
        default of 1,000 pages is mirrored in
        :class:`~repro.engine.database.Database`.
    """

    def __init__(self, disk: DiskManager, capacity: int = 1000) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self._disk = disk
        self._capacity = capacity
        self._frames: dict[int, _Frame] = {}
        self._clock_order: list[int] = []
        self._clock_hand = 0
        self.stats = BufferPoolStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    # -- public API ------------------------------------------------------------

    def new_page(self) -> Page:
        """Allocate a fresh page and cache it pinned."""
        page = self._disk.allocate_page()
        self._admit(page, pinned=True)
        return page

    def fetch(self, page_no: int) -> Page:
        """Return page ``page_no`` pinned, reading from disk on a miss."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.stats.hits += 1
            frame.pin_count += 1
            frame.referenced = True
            return frame.page
        self.stats.misses += 1
        page = self._disk.read_page(page_no)
        self._admit(page, pinned=True)
        return page

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        """Release one pin on ``page_no``; mark dirty if it was modified."""
        frame = self._frames.get(page_no)
        if frame is None or frame.pin_count <= 0:
            raise BufferPoolError(f"page {page_no} is not pinned")
        if dirty:
            frame.page.dirty = True
        frame.pin_count -= 1

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        for frame in self._frames.values():
            if frame.page.dirty:
                self._disk.write_page(frame.page)

    def contains(self, page_no: int) -> bool:
        return page_no in self._frames

    # -- CLOCK internals -------------------------------------------------------

    def _admit(self, page: Page, pinned: bool) -> None:
        if page.page_no in self._frames:
            frame = self._frames[page.page_no]
            if pinned:
                frame.pin_count += 1
            frame.referenced = True
            return
        if len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(page)
        frame.pin_count = 1 if pinned else 0
        self._frames[page.page_no] = frame
        self._clock_order.append(page.page_no)

    def _evict_one(self) -> None:
        """Run the clock hand until a victim with no pins and no
        reference bit is found; flush it if dirty."""
        if not self._clock_order:
            raise BufferPoolError("nothing to evict from an empty pool")
        # Each pass can clear one reference bit per frame, so 2 sweeps
        # suffice unless every frame is pinned.
        max_steps = 2 * len(self._clock_order) + 1
        for _ in range(max_steps):
            if self._clock_hand >= len(self._clock_order):
                self._clock_hand = 0
            page_no = self._clock_order[self._clock_hand]
            frame = self._frames[page_no]
            if frame.pin_count > 0:
                self._clock_hand += 1
                continue
            if frame.referenced:
                frame.referenced = False
                self._clock_hand += 1
                continue
            # Victim found.
            if frame.page.dirty:
                self._disk.write_page(frame.page)
            del self._frames[page_no]
            del self._clock_order[self._clock_hand]
            self.stats.evictions += 1
            return
        raise BufferPoolError("all buffer pool pages are pinned")
