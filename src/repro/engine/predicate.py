"""Predicate AST for the paper's query-template form.

Section 2.1 of the paper restricts selection conditions to a
conjunction ``Cselect = C1 ∧ … ∧ Cm`` where each ``Ci`` is a
disjunction over a single attribute in one of two shapes:

- *equality form* ``∨ (R.a = v_r)`` — :class:`EqualityDisjunction`;
- *interval form* ``∨ (v_r < R.a < w_r)`` with pairwise-disjoint
  intervals — :class:`IntervalDisjunction`.

Intervals may be open/closed and bounded/unbounded
(:class:`Interval`).  ``Cjoin`` combines equi-join conditions
(:class:`JoinEquality`) with parameterless single-relation conditions,
which we model as one-value equality or one-interval disjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence, Union

from repro.engine.datatypes import Infinity, MINUS_INFINITY, PLUS_INFINITY
from repro.engine.row import Row
from repro.errors import ConditionError

__all__ = [
    "Interval",
    "EqualityDisjunction",
    "IntervalDisjunction",
    "SelectionCondition",
    "SelectionConjunction",
    "JoinEquality",
]


@dataclass(frozen=True)
class Interval:
    """An interval ``low .. high`` with configurable endpoint closure.

    Endpoints may be the :data:`MINUS_INFINITY` / :data:`PLUS_INFINITY`
    sentinels for unbounded intervals.  The paper writes all intervals
    as open bounded ones "with the understanding that it can be closed
    and/or unbounded if necessary"; we carry the closure bits
    explicitly.
    """

    low: Any
    high: Any
    low_inclusive: bool = False
    high_inclusive: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.low, Infinity) and self.low.sign > 0:
            raise ConditionError("interval low bound cannot be +inf")
        if isinstance(self.high, Infinity) and self.high.sign < 0:
            raise ConditionError("interval high bound cannot be -inf")
        # Closure at an infinite endpoint is meaningless; normalize it
        # to open so structurally-equal intervals compare equal.
        if isinstance(self.low, Infinity) and self.low_inclusive:
            object.__setattr__(self, "low_inclusive", False)
        if isinstance(self.high, Infinity) and self.high_inclusive:
            object.__setattr__(self, "high_inclusive", False)
        if not isinstance(self.low, Infinity) and not isinstance(self.high, Infinity):
            if self.low > self.high:
                raise ConditionError(f"empty interval: {self}")
            if self.low == self.high and not (self.low_inclusive and self.high_inclusive):
                raise ConditionError(f"empty interval: {self}")

    # -- membership ------------------------------------------------------------

    def contains_value(self, value: Any) -> bool:
        """Whether ``value`` lies inside this interval."""
        if value is None:
            return False
        if isinstance(self.low, Infinity):
            above_low = True
        else:
            above_low = value >= self.low if self.low_inclusive else value > self.low
        if not above_low:
            return False
        if isinstance(self.high, Infinity):
            return True
        return value <= self.high if self.high_inclusive else value < self.high

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is entirely inside ``self``."""
        if isinstance(self.low, Infinity):
            low_ok = True
        elif isinstance(other.low, Infinity):
            low_ok = False
        elif other.low > self.low:
            low_ok = True
        elif other.low == self.low:
            low_ok = self.low_inclusive or not other.low_inclusive
        else:
            low_ok = False
        if not low_ok:
            return False
        if isinstance(self.high, Infinity):
            return True
        if isinstance(other.high, Infinity):
            return False
        if other.high < self.high:
            return True
        if other.high == self.high:
            return self.high_inclusive or not other.high_inclusive
        return False

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        # self entirely below other?
        if not isinstance(self.high, Infinity) and not isinstance(other.low, Infinity):
            if self.high < other.low:
                return False
            if self.high == other.low and not (self.high_inclusive and other.low_inclusive):
                return False
        # self entirely above other?
        if not isinstance(self.low, Infinity) and not isinstance(other.high, Infinity):
            if self.low > other.high:
                return False
            if self.low == other.high and not (self.low_inclusive and other.high_inclusive):
                return False
        return True

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlap of two intervals, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        if isinstance(self.low, Infinity):
            low, low_inc = other.low, other.low_inclusive
        elif isinstance(other.low, Infinity):
            low, low_inc = self.low, self.low_inclusive
        elif self.low > other.low:
            low, low_inc = self.low, self.low_inclusive
        elif other.low > self.low:
            low, low_inc = other.low, other.low_inclusive
        else:
            low, low_inc = self.low, self.low_inclusive and other.low_inclusive
        if isinstance(self.high, Infinity):
            high, high_inc = other.high, other.high_inclusive
        elif isinstance(other.high, Infinity):
            high, high_inc = self.high, self.high_inclusive
        elif self.high < other.high:
            high, high_inc = self.high, self.high_inclusive
        elif other.high < self.high:
            high, high_inc = other.high, other.high_inclusive
        else:
            high, high_inc = self.high, self.high_inclusive and other.high_inclusive
        return Interval(low, high, low_inc, high_inc)

    @staticmethod
    def everything() -> "Interval":
        """The unbounded interval (-inf, +inf)."""
        return Interval(MINUS_INFINITY, PLUS_INFINITY)

    def __str__(self) -> str:
        lo = "[" if self.low_inclusive else "("
        hi = "]" if self.high_inclusive else ")"
        return f"{lo}{self.low!r}, {self.high!r}{hi}"


def _check_disjoint(intervals: Sequence[Interval]) -> None:
    # Disjunction fanouts (the paper's u_i) are small, so a pairwise
    # check is clearer than sorting across mixed/unbounded endpoints.
    for i, a in enumerate(intervals):
        for b in intervals[i + 1 :]:
            if a.overlaps(b):
                raise ConditionError(f"intervals overlap: {a} and {b}")


@dataclass(frozen=True)
class EqualityDisjunction:
    """``(column = v1) or … or (column = vu)`` over one attribute."""

    column: str
    values: tuple[Any, ...]

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        vals = tuple(values)
        if not vals:
            raise ConditionError(f"equality disjunction on {column!r} has no values")
        if len(set(vals)) != len(vals):
            raise ConditionError(f"duplicate values in equality disjunction on {column!r}")
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", vals)

    @property
    def fanout(self) -> int:
        """The paper's u_i: number of disjuncts."""
        return len(self.values)

    def matches(self, row: Row) -> bool:
        return row[self.column] in self.values

    def value_test(self) -> Callable[[Any], bool]:
        """A compiled bare-value membership test for vectorized
        evaluation (a frozenset ``__contains__`` bound method)."""
        return frozenset(self.values).__contains__

    def is_equality(self) -> bool:
        return True

    def __str__(self) -> str:
        return " or ".join(f"{self.column}={v!r}" for v in self.values)


@dataclass(frozen=True)
class IntervalDisjunction:
    """``(v1 < column < w1) or … or (vu < column < wu)`` with disjoint
    intervals over one attribute."""

    column: str
    intervals: tuple[Interval, ...]

    def __init__(self, column: str, intervals: Sequence[Interval]) -> None:
        ivs = tuple(intervals)
        if not ivs:
            raise ConditionError(f"interval disjunction on {column!r} has no intervals")
        _check_disjoint(ivs)
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "intervals", ivs)

    @property
    def fanout(self) -> int:
        return len(self.intervals)

    def matches(self, row: Row) -> bool:
        value = row[self.column]
        return any(iv.contains_value(value) for iv in self.intervals)

    def value_test(self) -> Callable[[Any], bool]:
        """A compiled bare-value membership test for vectorized
        evaluation.  The common single-interval case binds the
        interval's ``contains_value`` directly."""
        if len(self.intervals) == 1:
            return self.intervals[0].contains_value
        intervals = self.intervals

        def test(value: Any) -> bool:
            return any(iv.contains_value(value) for iv in intervals)

        return test

    def is_equality(self) -> bool:
        return False

    def __str__(self) -> str:
        return " or ".join(f"{self.column} in {iv}" for iv in self.intervals)


SelectionCondition = Union[EqualityDisjunction, IntervalDisjunction]
"""One ``Ci`` of the paper's ``Cselect`` conjunction."""


@dataclass(frozen=True)
class SelectionConjunction:
    """``Cselect = C1 ∧ … ∧ Cm``.

    The order of conditions is significant: it fixes the dimension
    order of condition parts ``(d1, …, dm)`` throughout the PMV layer.
    """

    conditions: tuple[SelectionCondition, ...]

    def __init__(self, conditions: Sequence[SelectionCondition]) -> None:
        conds = tuple(conditions)
        columns = [c.column for c in conds]
        if len(set(columns)) != len(columns):
            raise ConditionError("each Cselect attribute may appear in only one Ci")
        object.__setattr__(self, "conditions", conds)

    @property
    def arity(self) -> int:
        """The paper's m: number of conjoined conditions."""
        return len(self.conditions)

    def columns(self) -> tuple[str, ...]:
        return tuple(c.column for c in self.conditions)

    def matches(self, row: Row) -> bool:
        return all(c.matches(row) for c in self.conditions)

    def combination_factor(self) -> int:
        """The paper's h = ∏ u_i for queries whose every condition part
        is basic (Section 4.2's 'combination factor')."""
        h = 1
        for c in self.conditions:
            h *= c.fanout
        return h

    def __iter__(self) -> Iterator[SelectionCondition]:
        return iter(self.conditions)

    def __str__(self) -> str:
        return " and ".join(f"({c})" for c in self.conditions)


@dataclass(frozen=True)
class JoinEquality:
    """An equi-join term ``left_column = right_column`` inside Cjoin."""

    left_relation: str
    left_column: str
    right_relation: str
    right_column: str

    def matches(self, left: Row, right: Row) -> bool:
        return left[self.left_column] == right[self.right_column]

    def qualified_left(self) -> str:
        return f"{self.left_relation}.{self.left_column}"

    def qualified_right(self) -> str:
        return f"{self.right_relation}.{self.right_column}"

    def __str__(self) -> str:
        return f"{self.qualified_left()}={self.qualified_right()}"
