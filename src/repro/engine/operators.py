"""Volcano-style query operators with a batched execution path.

Each operator exposes an output :class:`Schema` and two execution
methods: :meth:`~Operator.execute` yields :class:`Row` objects one at
a time (the classic iterator protocol), and
:meth:`~Operator.execute_batches` yields *lists* of rows at page/probe
granularity.  The batch path is the hot one: operators precompute
column positions and predicate closures at construction and process
whole batches with local-variable loops, so the Python-level
per-tuple interpreter cost stays off the measured hot path.  The two
paths produce identical rows in identical order.

Plans built from these operators drive all page traffic through the
buffer pool, so measured I/O and latency reflect the plan's real work.

:class:`Materialize` models the paper's *blocking* plans ("traditional
query execution cannot provide any result until it almost finishes"):
it drains its child completely before emitting the first row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.engine.columns import ColumnBatch, coalesce_chunks
from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.predicate import Interval
from repro.engine.row import Row
from repro.engine.schema import Schema
from repro.errors import PlanningError

__all__ = [
    "Operator",
    "SeqScan",
    "IndexEqualityScan",
    "IndexRangeScan",
    "Filter",
    "Project",
    "IndexNestedLoopJoin",
    "Materialize",
    "NestedLoopJoin",
    "DEFAULT_BATCH_ROWS",
    "iter_batches",
    "iter_column_batches",
]

RowPredicate = Callable[[Row], bool]

ColumnTests = Sequence[tuple[str, Callable[[Any], bool]]]
"""Vectorizable conjunctive predicate: ``(column_name, value_test)`` pairs."""

DEFAULT_BATCH_ROWS = 256
"""Chunk size used when an operator has to batch a row-at-a-time child."""


def _compile_tests(schema: Schema, tests: ColumnTests) -> tuple[tuple[int, Callable], ...]:
    """Resolve named column tests to positional ones, once."""
    return tuple((schema.position(name), test) for name, test in tests)


class Operator:
    """Base class for plan operators.

    Subclasses implement :meth:`execute_batches` (the native path);
    :meth:`execute` flattens it.  A subclass that only overrides
    ``execute`` still gets batching through the chunking fallback —
    but must override at least one of the two methods.
    """

    schema: Schema

    def execute(self) -> Iterator[Row]:
        for batch in self.execute_batches():
            yield from batch

    def execute_batches(self) -> Iterator[list[Row]]:
        chunk: list[Row] = []
        for row in self.execute():
            chunk.append(row)
            if len(chunk) >= DEFAULT_BATCH_ROWS:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def execute_columns(self) -> Iterator[ColumnBatch]:
        """Columnar fallback: wrap the row path's batches.

        Operators with a native vector implementation override this;
        everything else (including black-box predicates) stays correct
        by flowing through the authoritative row path.
        """
        schema = self.schema
        for batch in iter_batches(self):
            yield ColumnBatch.from_rows(batch, schema)

    def explain(self, indent: int = 0) -> str:
        """A one-line-per-operator plan rendering (for debugging/tests)."""
        lines = [("  " * indent) + self._describe()]
        for child in self._children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> Sequence["Operator"]:
        return ()


def iter_batches(op: Operator) -> Iterator[list[Row]]:
    """Yield ``op``'s output as row batches, honouring subclass overrides.

    Prefers the operator's native :meth:`~Operator.execute_batches`,
    but if a subclass overrides ``execute`` *below* the class that
    provides ``execute_batches`` (e.g. a test shim observing rows as
    they stream), the row path is authoritative: route through
    ``execute`` and chunk, so the override is not silently bypassed.
    Parent operators consume children through this helper.
    """
    for klass in type(op).__mro__:
        if klass is Operator:
            break
        namespace = klass.__dict__
        if "execute_batches" in namespace:
            yield from op.execute_batches()
            return
        if "execute" in namespace:
            chunk: list[Row] = []
            for row in op.execute():
                chunk.append(row)
                if len(chunk) >= DEFAULT_BATCH_ROWS:
                    yield chunk
                    chunk = []
            if chunk:
                yield chunk
            return
    yield from op.execute_batches()


def iter_column_batches(op: Operator) -> Iterator[ColumnBatch]:
    """Yield ``op``'s output as :class:`ColumnBatch`es, honouring overrides.

    Mirrors :func:`iter_batches`: an operator's native
    ``execute_columns`` is preferred, but a subclass that overrides the
    row-level ``execute``/``execute_batches`` *below* the class
    providing ``execute_columns`` is authoritative — its rows are
    wrapped, not bypassed.  Parent operators consume children through
    this helper on the columnar path.
    """
    for klass in type(op).__mro__:
        if klass is Operator:
            break
        namespace = klass.__dict__
        if "execute_columns" in namespace:
            yield from op.execute_columns()
            return
        if "execute_batches" in namespace or "execute" in namespace:
            schema = op.schema
            for batch in iter_batches(op):
                yield ColumnBatch.from_rows(batch, schema)
            return
    yield from op.execute_columns()


class SeqScan(Operator):
    """Full scan of a heap relation, with an optional pushed-down filter.

    Reads each heap page once and filters the page's live rows as one
    batch.
    """

    def __init__(
        self,
        relation: HeapRelation,
        predicate: RowPredicate | None = None,
        tests: ColumnTests | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        self.relation = relation
        self.predicate = predicate
        self.batch_rows = batch_rows
        self.schema = relation.schema
        self._tests = None if tests is None else _compile_tests(relation.schema, tests)

    def execute_batches(self) -> Iterator[list[Row]]:
        predicate = self.predicate
        for batch in self.relation.scan_batches():
            if predicate is not None:
                batch = [row for row in batch if predicate(row)]
            if batch:
                yield batch

    def execute_columns(self) -> Iterator[ColumnBatch]:
        if self.predicate is not None and self._tests is None:
            # Black-box predicate with no vector form: row path rules.
            yield from Operator.execute_columns(self)
            return
        schema = self.schema
        tests = self._tests or ()
        chunks = self.relation.scan_payload_chunks()
        for chunk in coalesce_chunks(chunks, self.batch_rows):
            batch = ColumnBatch.from_tuples(chunk, schema)
            if tests:
                batch = batch.filter(tests)
            if batch:
                yield batch

    def _describe(self) -> str:
        suffix = " (filtered)" if (self.predicate or self._tests) else ""
        return f"SeqScan({self.relation.name}){suffix}"


class IndexEqualityScan(Operator):
    """Probe an index with each of a list of keys and fetch the rows.

    Implements the access path for an equality-form ``Ci``: one probe
    per disjunct value; each probe's fetched rows form one batch.
    """

    def __init__(
        self,
        relation: HeapRelation,
        index: HashIndex | OrderedIndex,
        keys: Sequence[Any],
        predicate: RowPredicate | None = None,
        tests: ColumnTests | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        if index.relation is not relation:
            raise PlanningError(f"index {index.name!r} is not on {relation.name!r}")
        self.relation = relation
        self.index = index
        self.keys = list(keys)
        self.predicate = predicate
        self.batch_rows = batch_rows
        self.schema = relation.schema
        self._tests = None if tests is None else _compile_tests(relation.schema, tests)

    def execute_batches(self) -> Iterator[list[Row]]:
        fetch = self.relation.fetch
        predicate = self.predicate
        for key in self.keys:
            row_ids = self.index.probe(key)
            if predicate is None:
                batch = [fetch(row_id) for row_id in row_ids]
            else:
                batch = [
                    row for row_id in row_ids if predicate(row := fetch(row_id))
                ]
            if batch:
                yield batch

    def execute_columns(self) -> Iterator[ColumnBatch]:
        if self.predicate is not None and self._tests is None:
            yield from Operator.execute_columns(self)
            return
        schema = self.schema
        tests = self._tests or ()
        fetch_payloads = self.relation.fetch_payloads
        probe = self.index.probe

        def probe_chunks() -> Iterator[list[tuple]]:
            for key in self.keys:
                row_ids = probe(key)
                if row_ids:
                    yield fetch_payloads(row_ids)

        for chunk in coalesce_chunks(probe_chunks(), self.batch_rows):
            batch = ColumnBatch.from_tuples(chunk, schema)
            if tests:
                batch = batch.filter(tests)
            if batch:
                yield batch

    def _describe(self) -> str:
        return (
            f"IndexEqualityScan({self.relation.name} via {self.index.name}, "
            f"{len(self.keys)} key(s))"
        )


class IndexRangeScan(Operator):
    """Probe an ordered index with each of a list of intervals."""

    def __init__(
        self,
        relation: HeapRelation,
        index: OrderedIndex,
        intervals: Sequence[Interval],
        predicate: RowPredicate | None = None,
        tests: ColumnTests | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        if index.relation is not relation:
            raise PlanningError(f"index {index.name!r} is not on {relation.name!r}")
        if not index.supports_range():
            raise PlanningError(f"index {index.name!r} does not support ranges")
        self.relation = relation
        self.index = index
        self.intervals = list(intervals)
        self.predicate = predicate
        self.batch_rows = batch_rows
        self.schema = relation.schema
        self._tests = None if tests is None else _compile_tests(relation.schema, tests)

    def execute_batches(self) -> Iterator[list[Row]]:
        fetch = self.relation.fetch
        predicate = self.predicate
        for interval in self.intervals:
            row_ids = self.index.probe_range(
                interval.low,
                interval.high,
                low_inclusive=interval.low_inclusive,
                high_inclusive=interval.high_inclusive,
            )
            if predicate is None:
                batch = [fetch(row_id) for row_id in row_ids]
            else:
                batch = [
                    row for row_id in row_ids if predicate(row := fetch(row_id))
                ]
            if batch:
                yield batch

    def execute_columns(self) -> Iterator[ColumnBatch]:
        if self.predicate is not None and self._tests is None:
            yield from Operator.execute_columns(self)
            return
        schema = self.schema
        tests = self._tests or ()
        fetch_payloads = self.relation.fetch_payloads
        probe_range = self.index.probe_range

        def probe_chunks() -> Iterator[list[tuple]]:
            for interval in self.intervals:
                row_ids = probe_range(
                    interval.low,
                    interval.high,
                    low_inclusive=interval.low_inclusive,
                    high_inclusive=interval.high_inclusive,
                )
                if row_ids:
                    yield fetch_payloads(row_ids)

        for chunk in coalesce_chunks(probe_chunks(), self.batch_rows):
            batch = ColumnBatch.from_tuples(chunk, schema)
            if tests:
                batch = batch.filter(tests)
            if batch:
                yield batch

    def _describe(self) -> str:
        return (
            f"IndexRangeScan({self.relation.name} via {self.index.name}, "
            f"{len(self.intervals)} interval(s))"
        )


class Filter(Operator):
    """Apply a residual predicate."""

    def __init__(
        self,
        child: Operator,
        predicate: RowPredicate,
        label: str = "",
        tests: ColumnTests | None = None,
        equal_columns: tuple[str, str] | None = None,
    ) -> None:
        self.child = child
        self.predicate = predicate
        self.label = label
        self.schema = child.schema
        self._tests = None if tests is None else _compile_tests(child.schema, tests)
        if equal_columns is None:
            self._equal_positions = None
        else:
            left, right = equal_columns
            self._equal_positions = (
                child.schema.position(left),
                child.schema.position(right),
            )

    def execute_batches(self) -> Iterator[list[Row]]:
        predicate = self.predicate
        for batch in iter_batches(self.child):
            out = [row for row in batch if predicate(row)]
            if out:
                yield out

    def execute_columns(self) -> Iterator[ColumnBatch]:
        if self._equal_positions is not None:
            left, right = self._equal_positions
            for batch in iter_column_batches(self.child):
                out = batch.filter_equal_columns(left, right)
                if out:
                    yield out
        elif self._tests is not None:
            tests = self._tests
            for batch in iter_column_batches(self.child):
                out = batch.filter(tests)
                if out:
                    yield out
        else:
            # Black-box predicate: the row path is authoritative.
            yield from Operator.execute_columns(self)

    def _describe(self) -> str:
        return f"Filter({self.label})" if self.label else "Filter"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)


class Project(Operator):
    """Project to a list of (possibly qualified) column names.

    Column positions are resolved against the child schema once, at
    construction.
    """

    def __init__(self, child: Operator, names: Sequence[str]) -> None:
        self.child = child
        self.names = tuple(names)
        self.schema = child.schema.project(self.names)
        self._positions = tuple(child.schema.position(n) for n in self.names)

    def execute_batches(self) -> Iterator[list[Row]]:
        positions = self._positions
        schema = self.schema
        for batch in iter_batches(self.child):
            yield [
                Row([values[p] for p in positions], schema)
                for values in (row.values for row in batch)
            ]

    def execute_columns(self) -> Iterator[ColumnBatch]:
        # Zero-copy: the projected batch shares the picked column lists.
        positions = self._positions
        schema = self.schema
        for batch in iter_column_batches(self.child):
            yield batch.project(positions, schema)

    def _describe(self) -> str:
        return f"Project({', '.join(self.names)})"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)


class IndexNestedLoopJoin(Operator):
    """Index nested-loop join: probe the inner index once per outer row.

    This is the plan shape Section 2.1 describes for ``Eqt``: fetch
    outer tuples, probe the inner join-attribute index for each.  When
    the inner side is selective the index is probed many times before
    the first result appears — the latency the PMV method targets.
    """

    def __init__(
        self,
        outer: Operator,
        inner_relation: HeapRelation,
        inner_index: HashIndex | OrderedIndex,
        outer_key: str,
        inner_predicate: RowPredicate | None = None,
        inner_tests: ColumnTests | None = None,
    ) -> None:
        if inner_index.relation is not inner_relation:
            raise PlanningError(
                f"index {inner_index.name!r} is not on {inner_relation.name!r}"
            )
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_index = inner_index
        self.outer_key = outer_key
        self.inner_predicate = inner_predicate
        self.schema = outer.schema.concat(inner_relation.schema)
        self._key_pos = outer.schema.position(outer_key)
        self._inner_tests = (
            None
            if inner_tests is None
            else _compile_tests(inner_relation.schema, inner_tests)
        )

    def execute_batches(self) -> Iterator[list[Row]]:
        schema = self.schema
        key_pos = self._key_pos
        probe = self.inner_index.probe
        fetch = self.inner_relation.fetch
        predicate = self.inner_predicate
        for outer_batch in iter_batches(self.outer):
            out: list[Row] = []
            append = out.append
            for outer_row in outer_batch:
                outer_values = outer_row.values
                for row_id in probe(outer_values[key_pos]):
                    inner_row = fetch(row_id)
                    if predicate is None or predicate(inner_row):
                        append(Row(outer_values + inner_row.values, schema))
            if out:
                yield out

    def execute_columns(self) -> Iterator[ColumnBatch]:
        if self.inner_predicate is not None and self._inner_tests is None:
            yield from Operator.execute_columns(self)
            return
        schema = self.schema
        key_pos = self._key_pos
        probe = self.inner_index.probe
        fetch_payloads = self.inner_relation.fetch_payloads
        tests = self._inner_tests or ()
        for outer_batch in iter_column_batches(self.outer):
            out: list[tuple] = []
            append = out.append
            for outer_t in outer_batch.tuples():
                row_ids = probe(outer_t[key_pos])
                if not row_ids:
                    continue
                inners = fetch_payloads(row_ids)
                for pos, test in tests:
                    inners = [t for t in inners if test(t[pos])]
                for inner_t in inners:
                    append(outer_t + inner_t)
            if out:
                yield ColumnBatch.from_tuples(out, schema)

    def _describe(self) -> str:
        return (
            f"IndexNestedLoopJoin(inner={self.inner_relation.name} via "
            f"{self.inner_index.name}, outer_key={self.outer_key})"
        )

    def _children(self) -> Sequence[Operator]:
        return (self.outer,)


class NestedLoopJoin(Operator):
    """Fallback join for inner relations without a join-attribute index.

    Materializes an in-memory hash table over the inner relation on
    first use (one full scan), then probes it per outer row — i.e. a
    simple hash join.  The planner only picks this when no index
    exists, keeping the paper's index-nested-loop shape the default.
    """

    def __init__(
        self,
        outer: Operator,
        inner_relation: HeapRelation,
        inner_key: str,
        outer_key: str,
        inner_predicate: RowPredicate | None = None,
        inner_tests: ColumnTests | None = None,
    ) -> None:
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_key = inner_key
        self.outer_key = outer_key
        self.inner_predicate = inner_predicate
        self.schema = outer.schema.concat(inner_relation.schema)
        self._key_pos = outer.schema.position(outer_key)
        self._inner_pos = inner_relation.schema.position(inner_key)
        self._inner_tests = (
            None
            if inner_tests is None
            else _compile_tests(inner_relation.schema, inner_tests)
        )

    def _build_table(self) -> dict[Any, list[Row]]:
        inner_pos = self._inner_pos
        predicate = self.inner_predicate
        table: dict[Any, list[Row]] = {}
        for batch in self.inner_relation.scan_batches():
            for inner_row in batch:
                if predicate is None or predicate(inner_row):
                    table.setdefault(inner_row.values[inner_pos], []).append(inner_row)
        return table

    def _build_payload_table(self) -> dict[Any, list[tuple]]:
        """Hash-join build over raw value tuples (columnar path)."""
        inner_pos = self._inner_pos
        tests = self._inner_tests or ()
        table: dict[Any, list[tuple]] = {}
        for chunk in self.inner_relation.scan_payload_chunks():
            for pos, test in tests:
                chunk = [t for t in chunk if test(t[pos])]
            for inner_t in chunk:
                table.setdefault(inner_t[inner_pos], []).append(inner_t)
        return table

    def execute_batches(self) -> Iterator[list[Row]]:
        schema = self.schema
        key_pos = self._key_pos
        table = self._build_table()
        get = table.get
        for outer_batch in iter_batches(self.outer):
            out: list[Row] = []
            append = out.append
            for outer_row in outer_batch:
                outer_values = outer_row.values
                for inner_row in get(outer_values[key_pos], ()):
                    append(Row(outer_values + inner_row.values, schema))
            if out:
                yield out

    def execute_columns(self) -> Iterator[ColumnBatch]:
        if self.inner_predicate is not None and self._inner_tests is None:
            yield from Operator.execute_columns(self)
            return
        schema = self.schema
        key_pos = self._key_pos
        get = self._build_payload_table().get
        for outer_batch in iter_column_batches(self.outer):
            out: list[tuple] = []
            append = out.append
            for outer_t in outer_batch.tuples():
                for inner_t in get(outer_t[key_pos], ()):
                    append(outer_t + inner_t)
            if out:
                yield ColumnBatch.from_tuples(out, schema)

    def _describe(self) -> str:
        return (
            f"NestedLoopJoin(inner={self.inner_relation.name} hashed on "
            f"{self.inner_key}, outer_key={self.outer_key})"
        )

    def _children(self) -> Sequence[Operator]:
        return (self.outer,)


class Materialize(Operator):
    """Drain the child fully before emitting anything.

    Models blocking plans: with ``Materialize`` at the root, the first
    output row appears only after the whole input has been computed,
    exactly the behaviour that motivates PMVs.  The batch path
    preserves the child's batch boundaries after the full drain, so
    downstream per-batch accounting sees the same granularity as the
    non-blocking pipeline.
    """

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def execute_batches(self) -> Iterator[list[Row]]:
        buffered = list(iter_batches(self.child))
        yield from buffered

    def execute_columns(self) -> Iterator[ColumnBatch]:
        buffered = list(iter_column_batches(self.child))
        yield from buffered

    def _describe(self) -> str:
        return "Materialize"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)
