"""Volcano-style query operators.

Each operator exposes an output :class:`Schema` and an
:meth:`~Operator.execute` method yielding :class:`Row` objects.  Plans
built from these operators drive all page traffic through the buffer
pool, so measured I/O and latency reflect the plan's real work.

:class:`Materialize` models the paper's *blocking* plans ("traditional
query execution cannot provide any result until it almost finishes"):
it drains its child completely before emitting the first row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.predicate import Interval
from repro.engine.row import Row
from repro.engine.schema import Schema
from repro.errors import PlanningError

__all__ = [
    "Operator",
    "SeqScan",
    "IndexEqualityScan",
    "IndexRangeScan",
    "Filter",
    "Project",
    "IndexNestedLoopJoin",
    "Materialize",
    "NestedLoopJoin",
]

RowPredicate = Callable[[Row], bool]


class Operator:
    """Base class for plan operators."""

    schema: Schema

    def execute(self) -> Iterator[Row]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """A one-line-per-operator plan rendering (for debugging/tests)."""
        lines = [("  " * indent) + self._describe()]
        for child in self._children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> Sequence["Operator"]:
        return ()


class SeqScan(Operator):
    """Full scan of a heap relation, with an optional pushed-down filter."""

    def __init__(self, relation: HeapRelation, predicate: RowPredicate | None = None) -> None:
        self.relation = relation
        self.predicate = predicate
        self.schema = relation.schema

    def execute(self) -> Iterator[Row]:
        for row in self.relation.scan_rows():
            if self.predicate is None or self.predicate(row):
                yield row

    def _describe(self) -> str:
        suffix = " (filtered)" if self.predicate else ""
        return f"SeqScan({self.relation.name}){suffix}"


class IndexEqualityScan(Operator):
    """Probe an index with each of a list of keys and fetch the rows.

    Implements the access path for an equality-form ``Ci``: one probe
    per disjunct value.
    """

    def __init__(
        self,
        relation: HeapRelation,
        index: HashIndex | OrderedIndex,
        keys: Sequence[Any],
        predicate: RowPredicate | None = None,
    ) -> None:
        if index.relation is not relation:
            raise PlanningError(f"index {index.name!r} is not on {relation.name!r}")
        self.relation = relation
        self.index = index
        self.keys = list(keys)
        self.predicate = predicate
        self.schema = relation.schema

    def execute(self) -> Iterator[Row]:
        for key in self.keys:
            for row_id in self.index.probe(key):
                row = self.relation.fetch(row_id)
                if self.predicate is None or self.predicate(row):
                    yield row

    def _describe(self) -> str:
        return (
            f"IndexEqualityScan({self.relation.name} via {self.index.name}, "
            f"{len(self.keys)} key(s))"
        )


class IndexRangeScan(Operator):
    """Probe an ordered index with each of a list of intervals."""

    def __init__(
        self,
        relation: HeapRelation,
        index: OrderedIndex,
        intervals: Sequence[Interval],
        predicate: RowPredicate | None = None,
    ) -> None:
        if index.relation is not relation:
            raise PlanningError(f"index {index.name!r} is not on {relation.name!r}")
        if not index.supports_range():
            raise PlanningError(f"index {index.name!r} does not support ranges")
        self.relation = relation
        self.index = index
        self.intervals = list(intervals)
        self.predicate = predicate
        self.schema = relation.schema

    def execute(self) -> Iterator[Row]:
        for interval in self.intervals:
            row_ids = self.index.probe_range(
                interval.low,
                interval.high,
                low_inclusive=interval.low_inclusive,
                high_inclusive=interval.high_inclusive,
            )
            for row_id in row_ids:
                row = self.relation.fetch(row_id)
                if self.predicate is None or self.predicate(row):
                    yield row

    def _describe(self) -> str:
        return (
            f"IndexRangeScan({self.relation.name} via {self.index.name}, "
            f"{len(self.intervals)} interval(s))"
        )


class Filter(Operator):
    """Apply a residual predicate."""

    def __init__(self, child: Operator, predicate: RowPredicate, label: str = "") -> None:
        self.child = child
        self.predicate = predicate
        self.label = label
        self.schema = child.schema

    def execute(self) -> Iterator[Row]:
        for row in self.child.execute():
            if self.predicate(row):
                yield row

    def _describe(self) -> str:
        return f"Filter({self.label})" if self.label else "Filter"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)


class Project(Operator):
    """Project to a list of (possibly qualified) column names."""

    def __init__(self, child: Operator, names: Sequence[str]) -> None:
        self.child = child
        self.names = tuple(names)
        self.schema = child.schema.project(self.names)

    def execute(self) -> Iterator[Row]:
        positions = [self.child.schema.position(n) for n in self.names]
        schema = self.schema
        for row in self.child.execute():
            yield Row([row.values[p] for p in positions], schema)

    def _describe(self) -> str:
        return f"Project({', '.join(self.names)})"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)


class IndexNestedLoopJoin(Operator):
    """Index nested-loop join: probe the inner index once per outer row.

    This is the plan shape Section 2.1 describes for ``Eqt``: fetch
    outer tuples, probe the inner join-attribute index for each.  When
    the inner side is selective the index is probed many times before
    the first result appears — the latency the PMV method targets.
    """

    def __init__(
        self,
        outer: Operator,
        inner_relation: HeapRelation,
        inner_index: HashIndex | OrderedIndex,
        outer_key: str,
        inner_predicate: RowPredicate | None = None,
    ) -> None:
        if inner_index.relation is not inner_relation:
            raise PlanningError(
                f"index {inner_index.name!r} is not on {inner_relation.name!r}"
            )
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_index = inner_index
        self.outer_key = outer_key
        self.inner_predicate = inner_predicate
        self.schema = outer.schema.concat(inner_relation.schema)

    def execute(self) -> Iterator[Row]:
        schema = self.schema
        key_pos = self.outer.schema.position(self.outer_key)
        for outer_row in self.outer.execute():
            key = outer_row.values[key_pos]
            for row_id in self.inner_index.probe(key):
                inner_row = self.inner_relation.fetch(row_id)
                if self.inner_predicate is None or self.inner_predicate(inner_row):
                    yield outer_row.concat(inner_row, schema)

    def _describe(self) -> str:
        return (
            f"IndexNestedLoopJoin(inner={self.inner_relation.name} via "
            f"{self.inner_index.name}, outer_key={self.outer_key})"
        )

    def _children(self) -> Sequence[Operator]:
        return (self.outer,)


class NestedLoopJoin(Operator):
    """Fallback join for inner relations without a join-attribute index.

    Materializes an in-memory hash table over the inner relation on
    first use (one full scan), then probes it per outer row — i.e. a
    simple hash join.  The planner only picks this when no index
    exists, keeping the paper's index-nested-loop shape the default.
    """

    def __init__(
        self,
        outer: Operator,
        inner_relation: HeapRelation,
        inner_key: str,
        outer_key: str,
        inner_predicate: RowPredicate | None = None,
    ) -> None:
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_key = inner_key
        self.outer_key = outer_key
        self.inner_predicate = inner_predicate
        self.schema = outer.schema.concat(inner_relation.schema)

    def execute(self) -> Iterator[Row]:
        schema = self.schema
        key_pos = self.outer.schema.position(self.outer_key)
        inner_pos = self.inner_relation.schema.position(self.inner_key)
        table: dict[Any, list[Row]] = {}
        for inner_row in self.inner_relation.scan_rows():
            if self.inner_predicate is None or self.inner_predicate(inner_row):
                table.setdefault(inner_row.values[inner_pos], []).append(inner_row)
        for outer_row in self.outer.execute():
            for inner_row in table.get(outer_row.values[key_pos], ()):
                yield outer_row.concat(inner_row, schema)

    def _describe(self) -> str:
        return (
            f"NestedLoopJoin(inner={self.inner_relation.name} hashed on "
            f"{self.inner_key}, outer_key={self.outer_key})"
        )

    def _children(self) -> Sequence[Operator]:
        return (self.outer,)


class Materialize(Operator):
    """Drain the child fully before emitting anything.

    Models blocking plans: with ``Materialize`` at the root, the first
    output row appears only after the whole input has been computed,
    exactly the behaviour that motivates PMVs.
    """

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def execute(self) -> Iterator[Row]:
        buffered = list(self.child.execute())
        yield from buffered

    def _describe(self) -> str:
        return "Materialize"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)
