"""Volcano-style query operators with a batched execution path.

Each operator exposes an output :class:`Schema` and two execution
methods: :meth:`~Operator.execute` yields :class:`Row` objects one at
a time (the classic iterator protocol), and
:meth:`~Operator.execute_batches` yields *lists* of rows at page/probe
granularity.  The batch path is the hot one: operators precompute
column positions and predicate closures at construction and process
whole batches with local-variable loops, so the Python-level
per-tuple interpreter cost stays off the measured hot path.  The two
paths produce identical rows in identical order.

Plans built from these operators drive all page traffic through the
buffer pool, so measured I/O and latency reflect the plan's real work.

:class:`Materialize` models the paper's *blocking* plans ("traditional
query execution cannot provide any result until it almost finishes"):
it drains its child completely before emitting the first row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.predicate import Interval
from repro.engine.row import Row
from repro.engine.schema import Schema
from repro.errors import PlanningError

__all__ = [
    "Operator",
    "SeqScan",
    "IndexEqualityScan",
    "IndexRangeScan",
    "Filter",
    "Project",
    "IndexNestedLoopJoin",
    "Materialize",
    "NestedLoopJoin",
    "DEFAULT_BATCH_ROWS",
    "iter_batches",
]

RowPredicate = Callable[[Row], bool]

DEFAULT_BATCH_ROWS = 256
"""Chunk size used when an operator has to batch a row-at-a-time child."""


class Operator:
    """Base class for plan operators.

    Subclasses implement :meth:`execute_batches` (the native path);
    :meth:`execute` flattens it.  A subclass that only overrides
    ``execute`` still gets batching through the chunking fallback —
    but must override at least one of the two methods.
    """

    schema: Schema

    def execute(self) -> Iterator[Row]:
        for batch in self.execute_batches():
            yield from batch

    def execute_batches(self) -> Iterator[list[Row]]:
        chunk: list[Row] = []
        for row in self.execute():
            chunk.append(row)
            if len(chunk) >= DEFAULT_BATCH_ROWS:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def explain(self, indent: int = 0) -> str:
        """A one-line-per-operator plan rendering (for debugging/tests)."""
        lines = [("  " * indent) + self._describe()]
        for child in self._children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> Sequence["Operator"]:
        return ()


def iter_batches(op: Operator) -> Iterator[list[Row]]:
    """Yield ``op``'s output as row batches, honouring subclass overrides.

    Prefers the operator's native :meth:`~Operator.execute_batches`,
    but if a subclass overrides ``execute`` *below* the class that
    provides ``execute_batches`` (e.g. a test shim observing rows as
    they stream), the row path is authoritative: route through
    ``execute`` and chunk, so the override is not silently bypassed.
    Parent operators consume children through this helper.
    """
    for klass in type(op).__mro__:
        if klass is Operator:
            break
        namespace = klass.__dict__
        if "execute_batches" in namespace:
            yield from op.execute_batches()
            return
        if "execute" in namespace:
            chunk: list[Row] = []
            for row in op.execute():
                chunk.append(row)
                if len(chunk) >= DEFAULT_BATCH_ROWS:
                    yield chunk
                    chunk = []
            if chunk:
                yield chunk
            return
    yield from op.execute_batches()


class SeqScan(Operator):
    """Full scan of a heap relation, with an optional pushed-down filter.

    Reads each heap page once and filters the page's live rows as one
    batch.
    """

    def __init__(self, relation: HeapRelation, predicate: RowPredicate | None = None) -> None:
        self.relation = relation
        self.predicate = predicate
        self.schema = relation.schema

    def execute_batches(self) -> Iterator[list[Row]]:
        predicate = self.predicate
        for batch in self.relation.scan_batches():
            if predicate is not None:
                batch = [row for row in batch if predicate(row)]
            if batch:
                yield batch

    def _describe(self) -> str:
        suffix = " (filtered)" if self.predicate else ""
        return f"SeqScan({self.relation.name}){suffix}"


class IndexEqualityScan(Operator):
    """Probe an index with each of a list of keys and fetch the rows.

    Implements the access path for an equality-form ``Ci``: one probe
    per disjunct value; each probe's fetched rows form one batch.
    """

    def __init__(
        self,
        relation: HeapRelation,
        index: HashIndex | OrderedIndex,
        keys: Sequence[Any],
        predicate: RowPredicate | None = None,
    ) -> None:
        if index.relation is not relation:
            raise PlanningError(f"index {index.name!r} is not on {relation.name!r}")
        self.relation = relation
        self.index = index
        self.keys = list(keys)
        self.predicate = predicate
        self.schema = relation.schema

    def execute_batches(self) -> Iterator[list[Row]]:
        fetch = self.relation.fetch
        predicate = self.predicate
        for key in self.keys:
            row_ids = self.index.probe(key)
            if predicate is None:
                batch = [fetch(row_id) for row_id in row_ids]
            else:
                batch = [
                    row for row_id in row_ids if predicate(row := fetch(row_id))
                ]
            if batch:
                yield batch

    def _describe(self) -> str:
        return (
            f"IndexEqualityScan({self.relation.name} via {self.index.name}, "
            f"{len(self.keys)} key(s))"
        )


class IndexRangeScan(Operator):
    """Probe an ordered index with each of a list of intervals."""

    def __init__(
        self,
        relation: HeapRelation,
        index: OrderedIndex,
        intervals: Sequence[Interval],
        predicate: RowPredicate | None = None,
    ) -> None:
        if index.relation is not relation:
            raise PlanningError(f"index {index.name!r} is not on {relation.name!r}")
        if not index.supports_range():
            raise PlanningError(f"index {index.name!r} does not support ranges")
        self.relation = relation
        self.index = index
        self.intervals = list(intervals)
        self.predicate = predicate
        self.schema = relation.schema

    def execute_batches(self) -> Iterator[list[Row]]:
        fetch = self.relation.fetch
        predicate = self.predicate
        for interval in self.intervals:
            row_ids = self.index.probe_range(
                interval.low,
                interval.high,
                low_inclusive=interval.low_inclusive,
                high_inclusive=interval.high_inclusive,
            )
            if predicate is None:
                batch = [fetch(row_id) for row_id in row_ids]
            else:
                batch = [
                    row for row_id in row_ids if predicate(row := fetch(row_id))
                ]
            if batch:
                yield batch

    def _describe(self) -> str:
        return (
            f"IndexRangeScan({self.relation.name} via {self.index.name}, "
            f"{len(self.intervals)} interval(s))"
        )


class Filter(Operator):
    """Apply a residual predicate."""

    def __init__(self, child: Operator, predicate: RowPredicate, label: str = "") -> None:
        self.child = child
        self.predicate = predicate
        self.label = label
        self.schema = child.schema

    def execute_batches(self) -> Iterator[list[Row]]:
        predicate = self.predicate
        for batch in iter_batches(self.child):
            out = [row for row in batch if predicate(row)]
            if out:
                yield out

    def _describe(self) -> str:
        return f"Filter({self.label})" if self.label else "Filter"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)


class Project(Operator):
    """Project to a list of (possibly qualified) column names.

    Column positions are resolved against the child schema once, at
    construction.
    """

    def __init__(self, child: Operator, names: Sequence[str]) -> None:
        self.child = child
        self.names = tuple(names)
        self.schema = child.schema.project(self.names)
        self._positions = tuple(child.schema.position(n) for n in self.names)

    def execute_batches(self) -> Iterator[list[Row]]:
        positions = self._positions
        schema = self.schema
        for batch in iter_batches(self.child):
            yield [
                Row([values[p] for p in positions], schema)
                for values in (row.values for row in batch)
            ]

    def _describe(self) -> str:
        return f"Project({', '.join(self.names)})"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)


class IndexNestedLoopJoin(Operator):
    """Index nested-loop join: probe the inner index once per outer row.

    This is the plan shape Section 2.1 describes for ``Eqt``: fetch
    outer tuples, probe the inner join-attribute index for each.  When
    the inner side is selective the index is probed many times before
    the first result appears — the latency the PMV method targets.
    """

    def __init__(
        self,
        outer: Operator,
        inner_relation: HeapRelation,
        inner_index: HashIndex | OrderedIndex,
        outer_key: str,
        inner_predicate: RowPredicate | None = None,
    ) -> None:
        if inner_index.relation is not inner_relation:
            raise PlanningError(
                f"index {inner_index.name!r} is not on {inner_relation.name!r}"
            )
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_index = inner_index
        self.outer_key = outer_key
        self.inner_predicate = inner_predicate
        self.schema = outer.schema.concat(inner_relation.schema)
        self._key_pos = outer.schema.position(outer_key)

    def execute_batches(self) -> Iterator[list[Row]]:
        schema = self.schema
        key_pos = self._key_pos
        probe = self.inner_index.probe
        fetch = self.inner_relation.fetch
        predicate = self.inner_predicate
        for outer_batch in iter_batches(self.outer):
            out: list[Row] = []
            append = out.append
            for outer_row in outer_batch:
                outer_values = outer_row.values
                for row_id in probe(outer_values[key_pos]):
                    inner_row = fetch(row_id)
                    if predicate is None or predicate(inner_row):
                        append(Row(outer_values + inner_row.values, schema))
            if out:
                yield out

    def _describe(self) -> str:
        return (
            f"IndexNestedLoopJoin(inner={self.inner_relation.name} via "
            f"{self.inner_index.name}, outer_key={self.outer_key})"
        )

    def _children(self) -> Sequence[Operator]:
        return (self.outer,)


class NestedLoopJoin(Operator):
    """Fallback join for inner relations without a join-attribute index.

    Materializes an in-memory hash table over the inner relation on
    first use (one full scan), then probes it per outer row — i.e. a
    simple hash join.  The planner only picks this when no index
    exists, keeping the paper's index-nested-loop shape the default.
    """

    def __init__(
        self,
        outer: Operator,
        inner_relation: HeapRelation,
        inner_key: str,
        outer_key: str,
        inner_predicate: RowPredicate | None = None,
    ) -> None:
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_key = inner_key
        self.outer_key = outer_key
        self.inner_predicate = inner_predicate
        self.schema = outer.schema.concat(inner_relation.schema)
        self._key_pos = outer.schema.position(outer_key)
        self._inner_pos = inner_relation.schema.position(inner_key)

    def _build_table(self) -> dict[Any, list[Row]]:
        inner_pos = self._inner_pos
        predicate = self.inner_predicate
        table: dict[Any, list[Row]] = {}
        for batch in self.inner_relation.scan_batches():
            for inner_row in batch:
                if predicate is None or predicate(inner_row):
                    table.setdefault(inner_row.values[inner_pos], []).append(inner_row)
        return table

    def execute_batches(self) -> Iterator[list[Row]]:
        schema = self.schema
        key_pos = self._key_pos
        table = self._build_table()
        get = table.get
        for outer_batch in iter_batches(self.outer):
            out: list[Row] = []
            append = out.append
            for outer_row in outer_batch:
                outer_values = outer_row.values
                for inner_row in get(outer_values[key_pos], ()):
                    append(Row(outer_values + inner_row.values, schema))
            if out:
                yield out

    def _describe(self) -> str:
        return (
            f"NestedLoopJoin(inner={self.inner_relation.name} hashed on "
            f"{self.inner_key}, outer_key={self.outer_key})"
        )

    def _children(self) -> Sequence[Operator]:
        return (self.outer,)


class Materialize(Operator):
    """Drain the child fully before emitting anything.

    Models blocking plans: with ``Materialize`` at the root, the first
    output row appears only after the whole input has been computed,
    exactly the behaviour that motivates PMVs.  The batch path
    preserves the child's batch boundaries after the full drain, so
    downstream per-batch accounting sees the same granularity as the
    non-blocking pipeline.
    """

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def execute_batches(self) -> Iterator[list[Row]]:
        buffered = list(iter_batches(self.child))
        yield from buffered

    def _describe(self) -> str:
        return "Materialize"

    def _children(self) -> Sequence[Operator]:
        return (self.child,)
