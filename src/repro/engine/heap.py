"""Heap file relations.

A :class:`HeapRelation` stores rows on slotted pages fetched through
the buffer pool, so every scan, insert, delete, and update generates
realistic page traffic.  Rows are addressed by :class:`RowId` so
secondary indexes can point at records without duplicating them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.engine.bufferpool import BufferPool
from repro.engine.row import Row, RowId
from repro.engine.schema import Schema
from repro.errors import PageFullError, StorageError

__all__ = ["HeapRelation"]


class HeapRelation:
    """An append-friendly heap of rows over slotted pages.

    Parameters
    ----------
    name:
        Relation name (also baked into the schema for qualified lookup).
    schema:
        Column definitions; rebound to ``name`` if needed.
    buffer_pool:
        The buffer pool all page access goes through.
    """

    def __init__(self, name: str, schema: Schema, buffer_pool: BufferPool) -> None:
        self.name = name
        self.schema = schema if schema.relation_name == name else schema.rename(name)
        self._pool = buffer_pool
        self._page_nos: list[int] = []
        # Pages with free space, checked before allocating a new page.
        # The list preserves LIFO try-order; the set makes the
        # membership test on every delete O(1).
        self._open_page_nos: list[int] = []
        self._open_page_set: set[int] = set()
        self._row_count = 0

    # -- properties -------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def page_count(self) -> int:
        return len(self._page_nos)

    def __len__(self) -> int:
        return self._row_count

    # -- mutation -----------------------------------------------------------------

    def _retire_open_page(self, page_no: int) -> None:
        """Stop offering ``page_no`` for inserts (it is full enough)."""
        # Insert paths always retire the page they just tried, which is
        # the last entry; fall back to a scan only if that ever changes.
        if self._open_page_nos and self._open_page_nos[-1] == page_no:
            self._open_page_nos.pop()
        else:
            self._open_page_nos.remove(page_no)
        self._open_page_set.discard(page_no)

    def _reopen_page(self, page_no: int) -> None:
        """Offer ``page_no`` for inserts again (a delete freed space)."""
        if page_no not in self._open_page_set:
            self._open_page_nos.append(page_no)
            self._open_page_set.add(page_no)

    def _allocate_page(self):
        """Allocate, register, and return a new (pinned) page."""
        page = self._pool.new_page()
        self._page_nos.append(page.page_no)
        self._open_page_nos.append(page.page_no)
        self._open_page_set.add(page.page_no)
        return page

    def insert(self, values: Sequence[Any]) -> RowId:
        """Validate and insert a row; return its :class:`RowId`."""
        payload = self.schema.validate_values(values)
        size = Row(payload, self.schema).byte_size()
        # Try pages known to have space, most recently used last.
        while self._open_page_nos:
            page_no = self._open_page_nos[-1]
            page = self._pool.fetch(page_no)
            try:
                if page.fits(size):
                    slot_no = page.insert(payload, size)
                    self._pool.unpin(page_no, dirty=True)
                    self._row_count += 1
                    return RowId(page_no, slot_no)
                self._retire_open_page(page_no)
                self._pool.unpin(page_no)
            except PageFullError:
                self._retire_open_page(page_no)
                self._pool.unpin(page_no)
        page = self._allocate_page()
        try:
            slot_no = page.insert(payload, size)
        except PageFullError as exc:  # a single row larger than a page
            self._pool.unpin(page.page_no)
            raise StorageError(
                f"row of {size}B does not fit on an empty page"
            ) from exc
        self._pool.unpin(page.page_no, dirty=True)
        self._row_count += 1
        return RowId(page.page_no, slot_no)

    def insert_many(self, rows: Iterator[Sequence[Any]] | Sequence[Sequence[Any]]) -> list[RowId]:
        """Bulk insert; returns the row ids in input order.

        Keeps the current page pinned across consecutive rows instead
        of re-fetching it through the buffer pool per row, so a bulk
        load touches each destination page once.
        """
        schema = self.schema
        ids: list[RowId] = []
        page = None
        page_no = -1
        page_dirty = False
        try:
            for values in rows:
                payload = schema.validate_values(values)
                size = Row(payload, schema).byte_size()
                while True:
                    if page is None:
                        if self._open_page_nos:
                            page_no = self._open_page_nos[-1]
                            page = self._pool.fetch(page_no)
                        else:
                            page = self._allocate_page()
                            page_no = page.page_no
                        page_dirty = False
                    if page.fits(size):
                        try:
                            slot_no = page.insert(payload, size)
                        except PageFullError:
                            pass  # fall through to retire the page
                        else:
                            page_dirty = True
                            ids.append(RowId(page_no, slot_no))
                            self._row_count += 1
                            break
                    elif page.slot_count == 0:
                        # An empty page cannot hold this row at all.
                        raise StorageError(
                            f"row of {size}B does not fit on an empty page"
                        )
                    self._retire_open_page(page_no)
                    self._pool.unpin(page_no, dirty=page_dirty)
                    page = None
        finally:
            if page is not None:
                self._pool.unpin(page_no, dirty=page_dirty)
        return ids

    def delete(self, row_id: RowId) -> Row:
        """Delete the record at ``row_id``; return the removed row."""
        self._check_owned(row_id)
        page = self._pool.fetch(row_id.page_no)
        try:
            payload = page.delete(row_id.slot_no)
        finally:
            self._pool.unpin(row_id.page_no, dirty=True)
        self._reopen_page(row_id.page_no)
        self._row_count -= 1
        return Row(payload, self.schema)

    def update(self, row_id: RowId, **changes: Any) -> tuple[Row, Row, RowId]:
        """Update named columns of the record at ``row_id``.

        Returns ``(old_row, new_row, new_row_id)``.  If the grown record
        no longer fits on its page it is relocated (delete + insert), so
        the returned row id may differ from the input — callers must
        re-point their indexes.
        """
        old_row = self.fetch(row_id)
        new_row = old_row.replace(**changes)
        payload = self.schema.validate_values(new_row.values)
        size = new_row.byte_size()
        page = self._pool.fetch(row_id.page_no)
        try:
            page.update(row_id.slot_no, payload, size)
            self._pool.unpin(row_id.page_no, dirty=True)
            return old_row, new_row, row_id
        except PageFullError:
            self._pool.unpin(row_id.page_no)
        # Relocate.
        self.delete(row_id)
        new_id = self.insert(payload)
        return old_row, new_row, new_id

    def truncate(self) -> None:
        """Remove all rows (pages stay allocated but empty)."""
        for page_no in self._page_nos:
            page = self._pool.fetch(page_no)
            for slot_no, _ in list(page.live_slots()):
                page.delete(slot_no)
            self._pool.unpin(page_no, dirty=True)
        self._open_page_nos = list(self._page_nos)
        self._open_page_set = set(self._page_nos)
        self._row_count = 0

    # -- access ---------------------------------------------------------------------

    def fetch(self, row_id: RowId) -> Row:
        """Return the row stored at ``row_id``."""
        self._check_owned(row_id)
        page = self._pool.fetch(row_id.page_no)
        try:
            payload = page.read(row_id.slot_no)
        finally:
            self._pool.unpin(row_id.page_no)
        if payload is None:
            raise StorageError(f"{self.name}: {row_id} is deleted")
        return Row(payload, self.schema)

    def scan(self) -> Iterator[tuple[RowId, Row]]:
        """Full scan in physical order, yielding ``(row_id, row)``."""
        for page_no in self._page_nos:
            page = self._pool.fetch(page_no)
            try:
                live = list(page.live_slots())
            finally:
                self._pool.unpin(page_no)
            for slot_no, payload in live:
                yield RowId(page_no, slot_no), Row(payload, self.schema)

    def scan_rows(self) -> Iterator[Row]:
        """Full scan yielding rows only."""
        for _, row in self.scan():
            yield row

    def scan_batches(self) -> Iterator[list[Row]]:
        """Full scan yielding one list of live rows per page.

        Each page is fetched exactly once; empty pages yield nothing.
        This is the batched-execution entry point used by SeqScan and
        hash-join builds.
        """
        schema = self.schema
        for page_no in self._page_nos:
            page = self._pool.fetch(page_no)
            try:
                batch = [Row(payload, schema) for _, payload in page.live_slots()]
            finally:
                self._pool.unpin(page_no)
            if batch:
                yield batch

    def fetch_payload(self, row_id: RowId) -> tuple:
        """Return the raw value tuple at ``row_id`` (no :class:`Row`).

        The columnar pipeline's fetch primitive — identical page
        traffic to :meth:`fetch`, minus the per-record object.
        """
        self._check_owned(row_id)
        page = self._pool.fetch(row_id.page_no)
        try:
            payload = page.read(row_id.slot_no)
        finally:
            self._pool.unpin(row_id.page_no)
        if payload is None:
            raise StorageError(f"{self.name}: {row_id} is deleted")
        return payload

    def fetch_payloads(self, row_ids: Sequence[RowId]) -> list[tuple]:
        """Fetch many records' value tuples, in input order.

        Consecutive row ids on the same page are served under a single
        pin, so an index probe whose postings cluster physically
        touches each page once instead of once per record.
        """
        payloads: list[tuple] = []
        page = None
        page_no = -1
        try:
            for row_id in row_ids:
                if page is None or row_id.page_no != page_no:
                    if page is not None:
                        self._pool.unpin(page_no)
                        page = None
                    self._check_owned(row_id)
                    page_no = row_id.page_no
                    page = self._pool.fetch(page_no)
                payload = page.read(row_id.slot_no)
                if payload is None:
                    raise StorageError(f"{self.name}: {row_id} is deleted")
                payloads.append(payload)
        finally:
            if page is not None:
                self._pool.unpin(page_no)
        return payloads

    def scan_payload_chunks(self) -> Iterator[list[tuple]]:
        """Full scan yielding one list of live value tuples per page.

        The columnar counterpart of :meth:`scan_batches`: same per-page
        fetch pattern, no :class:`Row` objects.  Callers coalesce
        chunks up to their ``batch_rows`` target.
        """
        for page_no in self._page_nos:
            page = self._pool.fetch(page_no)
            try:
                chunk = [payload for _, payload in page.live_slots()]
            finally:
                self._pool.unpin(page_no)
            if chunk:
                yield chunk

    def find(self, predicate: Callable[[Row], bool]) -> Iterator[tuple[RowId, Row]]:
        """Scan filtered by an arbitrary Python predicate."""
        for row_id, row in self.scan():
            if predicate(row):
                yield row_id, row

    # -- internals -------------------------------------------------------------------

    def _check_owned(self, row_id: RowId) -> None:
        if row_id.page_no not in self._page_set:
            raise StorageError(f"{self.name}: page {row_id.page_no} not in relation")

    @property
    def _page_set(self) -> set[int]:
        # Small relations dominate tests; recompute lazily but cache on
        # the instance dict to keep hot paths fast.  The cache is keyed
        # on the page list's identity AND length: length catches
        # in-place appends (inserts, snapshot restore), identity catches
        # wholesale list replacement — including an equal-length page
        # swap, which a length-only key would wrongly validate against
        # the stale set.  The keyed list is held by strong reference so
        # the identity test cannot be fooled by id reuse.
        page_nos = self._page_nos
        if (
            getattr(self, "_page_set_src", None) is not page_nos
            or len(self._page_set_cache) != len(page_nos)
        ):
            self._page_set_cache = set(page_nos)
            self._page_set_src = page_nos
        return self._page_set_cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeapRelation({self.name!r}, rows={self._row_count}, pages={self.page_count})"
