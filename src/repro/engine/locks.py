"""Lock manager: shared/exclusive locks on named objects.

Implements the locking protocol of Section 3.6 — a query holds an S
lock on the PMV from Operation O2 through Operation O3, and any
transaction that would change the PMV needs an X lock, so the query's
partial results cannot be invalidated mid-flight — for a genuinely
concurrent engine:

- ``acquire(..., wait=False)`` (the default) keeps the historical
  no-wait policy: a conflicting request raises :class:`LockError`
  immediately, which doubles as deadlock avoidance for single-threaded
  callers.
- ``acquire(..., wait=True, timeout=...)`` queues the request on the
  object's FIFO wait queue and blocks the calling thread until a
  releasing holder grants it.  Grants are made *by the releaser* in
  strict queue order (consecutive S requests are granted as a batch),
  so writers cannot be starved by a stream of late readers and the
  grant order is deterministic.  A request that waits longer than
  ``timeout`` is abandoned with :class:`DeadlockError` — timeout is
  the deadlock-resolution policy, exactly like a real lock manager's
  ``lock_timeout``.

Fairness rules worth knowing:

- a *new* S request queues behind any waiting X request (no reader
  barging past a writer);
- a sole S holder upgrading to X is granted immediately, jumping the
  queue (the standard upgrade priority — queuing it behind a waiting X
  would deadlock instantly);
- two S holders upgrading simultaneously deadlock by construction and
  are both resolved by their timeouts.

The manager is fully thread-safe; every public method may be called
from any thread.  An optional cooperative scheduler (see
:mod:`repro.faults.sched`) can be installed as ``sched`` to make
multi-threaded interleavings deterministic: the manager reports
blocking waits and grant-time wakeups to it synchronously, so the set
of runnable threads the scheduler chooses from never depends on OS
timing.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import DeadlockError, LockError

__all__ = ["LockMode", "LockManager", "DEFAULT_LOCK_TIMEOUT"]

DEFAULT_LOCK_TIMEOUT = 5.0
"""Fallback wait bound for ``wait=True`` requests with no explicit
timeout — long enough for any real holder to finish, short enough that
a true deadlock resolves without hanging the suite."""


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class _Waiter:
    """One queued lock request, granted by a releasing holder."""

    __slots__ = ("txn_id", "mode", "event", "granted", "thread_ident")

    def __init__(self, txn_id: int, mode: LockMode) -> None:
        self.txn_id = txn_id
        self.mode = mode
        self.event = threading.Event()
        self.granted = False
        self.thread_ident = threading.get_ident()


@dataclass
class _LockState:
    """Holders and FIFO wait queue of one lockable object."""

    shared: set[int] = field(default_factory=set)
    exclusive: int | None = None
    waiters: deque = field(default_factory=deque)

    def is_free(self) -> bool:
        return not self.shared and self.exclusive is None and not self.waiters


class LockManager:
    """Grants and releases S/X locks keyed by object name."""

    def __init__(self, default_timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        self._locks: dict[str, _LockState] = {}
        self._mutex = threading.Lock()
        self.default_timeout = default_timeout
        self.grants = 0
        self.denials = 0
        self.waits = 0
        self.timeouts = 0
        # Optional cooperative interleaving scheduler (repro.faults.sched).
        # None (and zero-cost) in production.
        self.sched = None

    # -- acquisition --------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        obj: str,
        mode: LockMode,
        wait: bool = False,
        timeout: float | None = None,
    ) -> None:
        """Grant ``mode`` on ``obj`` to ``txn_id``.

        Re-acquisition is idempotent; an S holder that is the *sole*
        holder may upgrade to X.  On conflict: with ``wait=False`` a
        :class:`LockError` is raised immediately; with ``wait=True``
        the request joins the object's FIFO queue and blocks until
        granted, raising :class:`DeadlockError` after ``timeout``
        seconds (``default_timeout`` when ``None``).
        """
        sched = self.sched
        if sched is not None:
            sched.switch(f"lock.acquire:{obj}:{mode.value}")
        with self._mutex:
            state = self._locks.get(obj)
            if state is None:
                state = self._locks[obj] = _LockState()
            if self._grantable(state, txn_id, mode):
                self._apply_grant(state, txn_id, mode)
                self.grants += 1
                return
            if not wait:
                self.denials += 1
                message = self._denial_message(state, txn_id, obj, mode)
                self._reap(obj, state)
                raise LockError(message)
            waiter = _Waiter(txn_id, mode)
            if mode is LockMode.EXCLUSIVE and txn_id in state.shared:
                # Upgrade requests go to the front: they only wait on
                # the *other current S holders*, never on queued work.
                state.waiters.appendleft(waiter)
            else:
                state.waiters.append(waiter)
            self.waits += 1
        if timeout is None:
            timeout = self.default_timeout
        if sched is not None:
            sched.block(f"lock.wait:{obj}:{mode.value}")
        try:
            waiter.event.wait(timeout)
        finally:
            if sched is not None:
                sched.resume()
        newly: list[_Waiter] = []
        with self._mutex:
            if waiter.granted:
                return
            # Timed out: withdraw the request; the queue head behind it
            # may have become grantable.
            state = self._locks.get(obj)
            message = f"txn {txn_id}: {mode.value}({obj}) timed out after {timeout}s"
            if state is not None:
                try:
                    state.waiters.remove(waiter)
                except ValueError:
                    pass
                if waiter.granted:  # granted in the race window
                    return
                message = self._denial_message(state, txn_id, obj, mode) + (
                    f" (waited {timeout}s)"
                )
                newly = self._promote(state)
                self._reap(obj, state)
            self.timeouts += 1
            self.denials += 1
        self._wake(newly)
        raise DeadlockError(message)

    def release(self, txn_id: int, obj: str) -> None:
        """Release whatever ``txn_id`` holds on ``obj`` (no-op if
        nothing), granting queued requests that become compatible."""
        with self._mutex:
            state = self._locks.get(obj)
            if state is None:
                return
            state.shared.discard(txn_id)
            if state.exclusive == txn_id:
                state.exclusive = None
            newly = self._promote(state)
            self._reap(obj, state)
        self._wake(newly)

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (end of transaction)."""
        with self._mutex:
            held = [
                obj
                for obj, state in self._locks.items()
                if txn_id in state.shared or state.exclusive == txn_id
            ]
        for obj in held:
            self.release(txn_id, obj)

    # -- grant logic (all called under the mutex) ---------------------------

    def _grantable(self, state: _LockState, txn_id: int, mode: LockMode) -> bool:
        if mode is LockMode.SHARED:
            if txn_id in state.shared or state.exclusive == txn_id:
                return True  # idempotent re-acquisition (X subsumes S)
            if state.exclusive is not None:
                return False
            # FIFO fairness: a fresh S request must not barge past a
            # waiting X request, or writers starve under read traffic.
            return not any(
                waiter.mode is LockMode.EXCLUSIVE for waiter in state.waiters
            )
        # Exclusive request.
        if state.exclusive == txn_id:
            return True
        if state.exclusive is not None:
            return False
        others = state.shared - {txn_id}
        if others:
            return False
        if txn_id in state.shared:
            return True  # sole-holder upgrade jumps the queue
        return not state.waiters

    @staticmethod
    def _apply_grant(state: _LockState, txn_id: int, mode: LockMode) -> None:
        if mode is LockMode.SHARED:
            if state.exclusive != txn_id:
                state.shared.add(txn_id)
            return
        state.shared.discard(txn_id)  # upgrade folds the S into the X
        state.exclusive = txn_id

    def _promote(self, state: _LockState) -> list[_Waiter]:
        """Grant from the queue front in FIFO order.

        Consecutive compatible S requests are granted as one batch; an
        X request is granted alone and stops the sweep.
        """
        granted: list[_Waiter] = []
        while state.waiters:
            head = state.waiters[0]
            if state.exclusive is not None and state.exclusive != head.txn_id:
                break
            if head.mode is LockMode.SHARED:
                state.shared.add(head.txn_id)
            else:
                if state.shared - {head.txn_id}:
                    break
                state.shared.discard(head.txn_id)
                state.exclusive = head.txn_id
            state.waiters.popleft()
            head.granted = True
            self.grants += 1
            granted.append(head)
            if head.mode is LockMode.EXCLUSIVE:
                break
        return granted

    def _wake(self, granted: list[_Waiter]) -> None:
        """Wake granted waiters, informing the scheduler *before* the
        event fires so its runnable set is updated synchronously."""
        sched = self.sched
        for waiter in granted:
            if sched is not None:
                sched.unblock(waiter.thread_ident)
            waiter.event.set()

    def _reap(self, obj: str, state: _LockState) -> None:
        """Drop the state of an object nobody holds or waits on, so the
        lock table does not accumulate dead entries."""
        if state.is_free():
            self._locks.pop(obj, None)

    @staticmethod
    def _denial_message(
        state: _LockState, txn_id: int, obj: str, mode: LockMode
    ) -> str:
        if state.exclusive is not None and state.exclusive != txn_id:
            return (
                f"txn {txn_id}: {mode.value}({obj}) denied, "
                f"X held by txn {state.exclusive}"
            )
        others = sorted(state.shared - {txn_id})
        if others:
            return f"txn {txn_id}: {mode.value}({obj}) denied, S held by txns {others}"
        return f"txn {txn_id}: {mode.value}({obj}) denied, queued requests ahead"

    # -- inspection ---------------------------------------------------------

    def holds(self, txn_id: int, obj: str, mode: LockMode) -> bool:
        with self._mutex:
            state = self._locks.get(obj)
            if state is None:
                return False
            if mode is LockMode.SHARED:
                # An X lock subsumes S.
                return txn_id in state.shared or state.exclusive == txn_id
            return state.exclusive == txn_id

    def holders(self, obj: str) -> tuple[set[int], int | None]:
        """``(shared_holders, exclusive_holder)`` for ``obj``."""
        with self._mutex:
            state = self._locks.get(obj)
            if state is None:
                return set(), None
            return set(state.shared), state.exclusive

    def waiting(self, obj: str) -> int:
        """Number of requests queued on ``obj``."""
        with self._mutex:
            state = self._locks.get(obj)
            return len(state.waiters) if state is not None else 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the stress driver and tests.

        ``active_objects``/``queued`` describe the current lock table;
        the rest are lifetime counters.
        """
        with self._mutex:
            return {
                "grants": self.grants,
                "denials": self.denials,
                "waits": self.waits,
                "timeouts": self.timeouts,
                "active_objects": len(self._locks),
                "queued": sum(len(s.waiters) for s in self._locks.values()),
            }
