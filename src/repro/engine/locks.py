"""Lock manager: shared/exclusive locks on named objects.

The engine runs single-threaded, so locks never *wait*; the manager's
job is to enforce the locking protocol of Section 3.6 — a query holds
an S lock on the PMV from Operation O2 through Operation O3, and any
transaction that would change the PMV needs an X lock, so the query's
partial results cannot be invalidated mid-flight.  Conflicting
requests from other transactions raise :class:`LockError` immediately
(a "no-wait" policy), which doubles as deadlock avoidance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LockError

__all__ = ["LockMode", "LockManager"]


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _LockState:
    """Holders of one lockable object."""

    shared: set[int] = field(default_factory=set)
    exclusive: int | None = None

    def is_free(self) -> bool:
        return not self.shared and self.exclusive is None


class LockManager:
    """Grants and releases S/X locks keyed by object name."""

    def __init__(self) -> None:
        self._locks: dict[str, _LockState] = {}
        self.grants = 0
        self.denials = 0

    # -- acquisition --------------------------------------------------------

    def acquire(self, txn_id: int, obj: str, mode: LockMode) -> None:
        """Grant ``mode`` on ``obj`` to ``txn_id`` or raise :class:`LockError`.

        Re-acquisition is idempotent; an S holder that is the *sole*
        holder may upgrade to X.
        """
        state = self._locks.setdefault(obj, _LockState())
        if mode is LockMode.SHARED:
            if state.exclusive is not None and state.exclusive != txn_id:
                self.denials += 1
                raise LockError(
                    f"txn {txn_id}: S({obj}) denied, X held by txn {state.exclusive}"
                )
            state.shared.add(txn_id)
            self.grants += 1
            return
        # Exclusive request.
        if state.exclusive is not None and state.exclusive != txn_id:
            self.denials += 1
            raise LockError(
                f"txn {txn_id}: X({obj}) denied, X held by txn {state.exclusive}"
            )
        others = state.shared - {txn_id}
        if others:
            self.denials += 1
            raise LockError(
                f"txn {txn_id}: X({obj}) denied, S held by txns {sorted(others)}"
            )
        state.shared.discard(txn_id)  # upgrade folds the S into the X
        state.exclusive = txn_id
        self.grants += 1

    def release(self, txn_id: int, obj: str) -> None:
        """Release whatever ``txn_id`` holds on ``obj`` (no-op if nothing)."""
        state = self._locks.get(obj)
        if state is None:
            return
        state.shared.discard(txn_id)
        if state.exclusive == txn_id:
            state.exclusive = None
        if state.is_free():
            del self._locks[obj]

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (end of transaction)."""
        for obj in list(self._locks):
            self.release(txn_id, obj)

    # -- inspection -----------------------------------------------------------

    def holds(self, txn_id: int, obj: str, mode: LockMode) -> bool:
        state = self._locks.get(obj)
        if state is None:
            return False
        if mode is LockMode.SHARED:
            # An X lock subsumes S.
            return txn_id in state.shared or state.exclusive == txn_id
        return state.exclusive == txn_id

    def holders(self, obj: str) -> tuple[set[int], int | None]:
        """``(shared_holders, exclusive_holder)`` for ``obj``."""
        state = self._locks.get(obj)
        if state is None:
            return set(), None
        return set(state.shared), state.exclusive
