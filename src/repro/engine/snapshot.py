"""Database snapshots (checkpointing).

A snapshot captures the *physical* state of every relation — pages,
slots, tombstones — plus index definitions, as a JSON-safe document.
Because the page layout is preserved exactly, row ids stay valid, so
recovery can restore a snapshot and replay only the log records after
its checkpoint LSN instead of the whole history::

    lsn = checkpoint(database)           # snapshot + WAL marker
    snapshot = take_snapshot(database)
    ...
    restored = recover_from_snapshot(snapshot, wal)

Like the plain :func:`~repro.engine.wal.recover`, snapshots cover the
durable substrate only; templates and PMVs are in-memory objects that
the application re-registers (PMVs restart empty by design).

Serialized snapshots are framed with a CRC32 over the document
(:func:`snapshot_to_json` embeds it, :func:`snapshot_from_json`
verifies it): a corrupted snapshot file fails loudly with
:class:`~repro.errors.SnapshotCorruptionError` instead of silently
installing a garbled page image — the same checksum discipline the WAL
applies per record.
"""

from __future__ import annotations

import json
import zlib
from typing import Any

from repro.engine.database import Database
from repro.engine.page import Page
from repro.engine.wal import WriteAheadLog, _column_from_payload, _column_to_payload
from repro.errors import EngineError, SnapshotCorruptionError

__all__ = [
    "take_snapshot",
    "restore_snapshot",
    "checkpoint",
    "recover_from_snapshot",
    "snapshot_crc",
    "snapshot_to_json",
    "snapshot_from_json",
]

SNAPSHOT_FORMAT = 1


def take_snapshot(database: Database) -> dict[str, Any]:
    """Capture the database's physical state as a JSON-safe dict."""
    database.buffer_pool.flush_all()
    relations = []
    for relation in database.catalog.relations():
        pages = []
        for page_no in relation._page_nos:
            page = database.disk.read_page(page_no)
            pages.append(
                {
                    "page_no": page_no,
                    "capacity": page.capacity,
                    "slots": [
                        None if payload is None else list(payload)
                        for payload in page._slots
                    ],
                    "sizes": list(page._sizes),
                }
            )
        relations.append(
            {
                "name": relation.name,
                "columns": [_column_to_payload(c) for c in relation.schema.columns],
                "pages": pages,
                "open_pages": list(relation._open_page_nos),
            }
        )
    indexes = [
        {
            "name": index.name,
            "relation": index.relation.name,
            "key_columns": list(index.key_columns),
            "ordered": index.supports_range(),
        }
        for relation in database.catalog.relations()
        for index in database.catalog.indexes_on(relation.name)
    ]
    checkpoint_lsn = database.wal.last_lsn if database.wal is not None else 0
    return {
        "format": SNAPSHOT_FORMAT,
        "checkpoint_lsn": checkpoint_lsn,
        "next_page_no": database.disk._next_page_no,
        "relations": relations,
        "indexes": indexes,
    }


def restore_snapshot(
    snapshot: dict[str, Any],
    buffer_pool_pages: int = 1000,
    wal: WriteAheadLog | None = None,
    page_size: int | None = None,
) -> Database:
    """Rebuild a database from a snapshot, page layout included.

    ``page_size`` must match the crashed instance's when log records
    will be replayed on top: restored pages keep their stored
    capacities, but pages allocated *during replay* use this size, and
    replay addresses rows by (page, slot) — a different capacity packs
    rows differently and breaks that addressing.
    """
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise EngineError(f"unsupported snapshot format {snapshot.get('format')!r}")
    if page_size is None:
        database = Database(buffer_pool_pages=buffer_pool_pages, wal=wal)
    else:
        database = Database(
            buffer_pool_pages=buffer_pool_pages, page_size=page_size, wal=wal
        )
    suppress = database.wal
    database.wal = None  # restoration itself must not be re-logged
    try:
        for rel_entry in snapshot["relations"]:
            columns = [_column_from_payload(c) for c in rel_entry["columns"]]
            relation = database.create_relation(rel_entry["name"], columns)
            row_count = 0
            for page_entry in rel_entry["pages"]:
                page = Page(page_entry["page_no"], capacity=page_entry["capacity"])
                # Rebuild the slot directory verbatim (Page.insert would
                # reuse tombstones and renumber slots, breaking row ids).
                for payload, size in zip(page_entry["slots"], page_entry["sizes"]):
                    if payload is None:
                        page._slots.append(None)
                        page._sizes.append(0)
                    else:
                        page._slots.append(tuple(payload))
                        page._sizes.append(size)
                        row_count += 1
                from repro.engine.page import PAGE_HEADER, SLOT_OVERHEAD

                page._used = (
                    PAGE_HEADER
                    + sum(page._sizes)
                    + SLOT_OVERHEAD * len(page._slots)
                )
                page.dirty = False
                database.disk._pages[page.page_no] = page
                relation._page_nos.append(page.page_no)
            relation._open_page_nos = list(rel_entry["open_pages"])
            # Rebuild the membership set alongside the list: with a
            # stale (empty) set, the first post-restore delete would
            # re-append an already-open page and shift which page the
            # next insert picks — a restored heap must place future
            # rows exactly where the live heap would have.
            relation._open_page_set = set(rel_entry["open_pages"])
            relation._row_count = row_count
        database.disk._next_page_no = snapshot["next_page_no"]
        for idx_entry in snapshot["indexes"]:
            database.create_index(
                idx_entry["name"],
                idx_entry["relation"],
                idx_entry["key_columns"],
                ordered=idx_entry["ordered"],
            )
    finally:
        database.wal = suppress
    return database


def checkpoint(database: Database) -> dict[str, Any]:
    """Append a WAL checkpoint marker and return the paired snapshot.

    On a segmented WAL this is also the truncation driver: once the
    snapshot is taken, every segment fully covered by the checkpoint
    and by every registered consumer (replication links, the CDC
    maintainer — see :class:`~repro.engine.wal.LsnRetentionRegistry`)
    is reclaimed to the archive, bounding the live log.
    """
    if database.wal is None:
        raise EngineError("checkpoint requires a database with a WAL")
    database.wal.checkpoint()
    snapshot = take_snapshot(database)
    database.wal.reclaim()
    return snapshot


def recover_from_snapshot(
    snapshot: dict[str, Any],
    log: WriteAheadLog,
    buffer_pool_pages: int = 1000,
    page_size: int | None = None,
) -> Database:
    """Restore a snapshot, then replay only the post-checkpoint log."""
    from repro.engine.wal import replay_record

    database = restore_snapshot(
        snapshot, buffer_pool_pages=buffer_pool_pages, page_size=page_size
    )
    for record in log.records(after_lsn=snapshot["checkpoint_lsn"]):
        replay_record(database, record)
    return database


def snapshot_crc(snapshot: dict[str, Any]) -> int:
    """CRC32 over the snapshot document (sans any embedded ``crc`` key)."""
    body = {k: v for k, v in snapshot.items() if k != "crc"}
    text = json.dumps(body, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def snapshot_to_json(snapshot: dict[str, Any]) -> str:
    """Serialize a snapshot for storage, embedding a CRC32 frame."""
    body = {k: v for k, v in snapshot.items() if k != "crc"}
    body["crc"] = snapshot_crc(snapshot)
    return json.dumps(body, separators=(",", ":"))


def snapshot_from_json(text: str) -> dict[str, Any]:
    """Parse a stored snapshot, verifying its CRC32 when present.

    Snapshots written before checksum framing carry no ``crc`` key and
    are accepted as-is; anything with a mismatched checksum fails
    loudly rather than restoring a silently-garbled page image.
    """
    try:
        snapshot = json.loads(text)
    except ValueError as exc:
        raise SnapshotCorruptionError(f"snapshot is not valid JSON: {exc}") from exc
    if not isinstance(snapshot, dict):
        raise SnapshotCorruptionError("snapshot document is not an object")
    stored = snapshot.pop("crc", None)
    if stored is not None and stored != snapshot_crc(snapshot):
        raise SnapshotCorruptionError(
            f"snapshot checksum mismatch (stored {stored}, "
            f"computed {snapshot_crc(snapshot)})"
        )
    return snapshot
