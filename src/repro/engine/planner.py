"""Rule-based planner for ``qt``-form queries.

The planner produces the plan shape Section 2.1 describes: pick a
driving relation whose selection attribute has an index, fetch its
matching tuples by index probes, then index-nested-loop-join the
remaining relations along ``Cjoin``'s equi-join edges, applying every
remaining selection as a residual predicate.  The root projects to the
*expanded* select list ``Ls'`` (Section 3.2) and, for blocking plans,
materializes the full result before the first row is emitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.catalog import Catalog
from repro.engine.operators import (
    Filter,
    IndexEqualityScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Materialize,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
)
from repro.engine.predicate import (
    EqualityDisjunction,
    IntervalDisjunction,
    JoinEquality,
    SelectionCondition,
)
from repro.engine.row import Row
from repro.engine.stats import StatisticsCollector
from repro.engine.template import Query
from repro.errors import PlanningError

__all__ = ["Plan", "plan_query"]


@dataclass
class Plan:
    """An executable plan: a root operator plus its source query."""

    root: Operator
    query: Query
    blocking: bool

    def execute(self) -> Iterator[Row]:
        """Yield result rows (with the expanded select list ``Ls'``)."""
        return self.root.execute()

    def run(self) -> list[Row]:
        """Execute to completion and return all rows."""
        return list(self.root.execute())

    def explain(self) -> str:
        return self.root.explain()


def _conditions_by_relation(query: Query) -> dict[str, list[SelectionCondition]]:
    """Group slot conditions and fixed conditions by their relation."""
    grouped: dict[str, list[SelectionCondition]] = {
        name: [] for name in query.template.relations
    }
    for slot, condition in zip(query.template.slots, query.cselect.conditions):
        grouped[slot.relation].append(condition)
    for condition in query.template.fixed_conditions:
        relation = condition.column.split(".", 1)[0]
        if relation not in grouped:
            raise PlanningError(
                f"fixed condition on unknown relation: {condition.column!r}"
            )
        grouped[relation].append(condition)
    return grouped


def _conjunction_predicate(conditions: Sequence[SelectionCondition]):
    """A row predicate AND-ing ``conditions`` (None when empty)."""
    if not conditions:
        return None
    if len(conditions) == 1:
        single = conditions[0]
        return single.matches
    conds = tuple(conditions)

    def predicate(row: Row) -> bool:
        return all(c.matches(row) for c in conds)

    return predicate


def _estimate_driver_rows(
    statistics: StatisticsCollector, relation: str, condition: SelectionCondition
) -> float | None:
    """Estimated rows an index scan on ``condition`` would fetch, or
    ``None`` when no statistics are available for the relation."""
    if not statistics.has_table(relation):
        return None
    table = statistics.table(relation)
    column_stats = table.column(condition.column)
    if isinstance(condition, EqualityDisjunction):
        selectivity = column_stats.disjunction_selectivity(condition.values)
    else:
        selectivity = min(
            sum(column_stats.interval_selectivity(iv) for iv in condition.intervals),
            1.0,
        )
    return selectivity * table.row_count


def _choose_driver(
    catalog: Catalog,
    query: Query,
    statistics: StatisticsCollector | None = None,
) -> tuple[str, SelectionCondition | None]:
    """Pick the driving relation and the indexed condition to scan it by.

    With statistics (the Section 4.2 ``ANALYZE`` equivalent), the
    usable-indexed slot with the *lowest estimated row count* drives
    the plan; without them, the first usable-indexed slot in template
    order does.  Falls back to a sequential scan of the first relation
    when no slot has a usable index.
    """
    candidates: list[tuple[str, SelectionCondition]] = []
    for slot, condition in zip(query.template.slots, query.cselect.conditions):
        need_range = isinstance(condition, IntervalDisjunction)
        index = catalog.find_index(slot.relation, slot.column, require_range=need_range)
        if index is not None:
            candidates.append((slot.relation, condition))
    if not candidates:
        return query.template.relations[0], None
    if statistics is not None:
        estimated: list[tuple[float, int, str, SelectionCondition]] = []
        for order, (relation, condition) in enumerate(candidates):
            rows = _estimate_driver_rows(statistics, relation, condition)
            if rows is not None:
                estimated.append((rows, order, relation, condition))
        if len(estimated) == len(candidates):
            estimated.sort(key=lambda item: (item[0], item[1]))
            _, _, relation, condition = estimated[0]
            return relation, condition
    return candidates[0]


def plan_query(
    catalog: Catalog,
    query: Query,
    blocking: bool = True,
    statistics: StatisticsCollector | None = None,
) -> Plan:
    """Build a plan for ``query``.

    Parameters
    ----------
    catalog:
        Catalog supplying relations and indexes.
    query:
        A bound ``qt``-form query.
    blocking:
        Materialize the full result before emitting the first row,
        modelling the traditional (blocking) execution the paper
        contrasts PMVs with.  The PMV layer leaves this ``True``.
    statistics:
        Optional ANALYZE output; when present and covering the
        candidate relations, the most selective indexed slot drives
        the plan.
    """
    template = query.template
    grouped = _conditions_by_relation(query)

    driver, driver_condition = _choose_driver(catalog, query, statistics)
    driver_relation = catalog.relation(driver)
    residual_on_driver = [c for c in grouped[driver] if c is not driver_condition]
    driver_predicate = _conjunction_predicate(residual_on_driver)

    root: Operator
    if driver_condition is None:
        all_driver = _conjunction_predicate(grouped[driver])
        root = SeqScan(driver_relation, predicate=all_driver)
    elif isinstance(driver_condition, EqualityDisjunction):
        index = catalog.find_index(driver, driver_condition.column)
        assert index is not None
        root = IndexEqualityScan(
            driver_relation, index, driver_condition.values, predicate=driver_predicate
        )
    else:
        index = catalog.find_index(driver, driver_condition.column, require_range=True)
        assert index is not None
        root = IndexRangeScan(
            driver_relation, index, driver_condition.intervals, predicate=driver_predicate
        )

    # Join the remaining relations along Cjoin's equi-join edges.
    planned = {driver}
    pending_edges: list[JoinEquality] = list(template.joins)
    while len(planned) < len(template.relations):
        progressed = False
        for edge in list(pending_edges):
            left_in = edge.left_relation in planned
            right_in = edge.right_relation in planned
            if left_in and right_in:
                # Redundant edge: apply as a residual filter.
                pending_edges.remove(edge)
                left_col, right_col = edge.qualified_left(), edge.qualified_right()
                root = Filter(
                    root,
                    lambda row, lc=left_col, rc=right_col: row[lc] == row[rc],
                    label=str(edge),
                )
                progressed = True
                continue
            if not left_in and not right_in:
                continue
            if left_in:
                outer_key = edge.qualified_left()
                inner_name, inner_col = edge.right_relation, edge.qualified_right()
            else:
                outer_key = edge.qualified_right()
                inner_name, inner_col = edge.left_relation, edge.qualified_left()
            inner_relation = catalog.relation(inner_name)
            inner_index = catalog.find_index(inner_name, inner_col)
            inner_predicate = _conjunction_predicate(grouped[inner_name])
            if inner_index is not None:
                root = IndexNestedLoopJoin(
                    root, inner_relation, inner_index, outer_key, inner_predicate
                )
            else:
                # No join-attribute index: fall back to a hash join over
                # a one-shot scan of the inner relation.
                bare_inner = inner_col.split(".", 1)[1] if "." in inner_col else inner_col
                root = NestedLoopJoin(
                    root, inner_relation, bare_inner, outer_key, inner_predicate
                )
            planned.add(inner_name)
            pending_edges.remove(edge)
            progressed = True
        if not progressed:
            missing = set(template.relations) - planned
            raise PlanningError(
                f"join graph of {template.name!r} is disconnected; "
                f"cannot reach {sorted(missing)}"
            )
    # Any leftover edges connect already-planned relations.
    for edge in pending_edges:
        left_col, right_col = edge.qualified_left(), edge.qualified_right()
        root = Filter(
            root,
            lambda row, lc=left_col, rc=right_col: row[lc] == row[rc],
            label=str(edge),
        )

    root = Project(root, template.expanded_select_list())
    if blocking:
        root = Materialize(root)
    return Plan(root=root, query=query, blocking=blocking)
