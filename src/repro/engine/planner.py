"""Rule-based planner for ``qt``-form queries.

The planner produces the plan shape Section 2.1 describes: pick a
driving relation whose selection attribute has an index, fetch its
matching tuples by index probes, then index-nested-loop-join the
remaining relations along ``Cjoin``'s equi-join edges, applying every
remaining selection as a residual predicate.  The root projects to the
*expanded* select list ``Ls'`` (Section 3.2) and, for blocking plans,
materializes the full result before the first row is emitted.

Planning is split into two phases so the per-query hot path stays
cheap:

- :func:`compile_plan` does everything that depends only on the
  *template* and the catalog — condition grouping, driver access-path
  selection, the join-order walk — and produces a
  :class:`CompiledPlan`;
- :meth:`CompiledPlan.bind` stamps out an executable :class:`Plan` for
  one bound query by substituting the slot values into the compiled
  skeleton.

:func:`plan_query` composes the two for one-shot use;
:class:`repro.engine.database.Database` caches compiled plans per
(template, blocking, driver) and re-binds them per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.catalog import Catalog
from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.columns import ColumnBatch
from repro.engine.operators import (
    DEFAULT_BATCH_ROWS,
    Filter,
    IndexEqualityScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Materialize,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    iter_batches,
    iter_column_batches,
)
from repro.engine.predicate import (
    EqualityDisjunction,
    IntervalDisjunction,
    JoinEquality,
    SelectionCondition,
)
from repro.engine.row import Row
from repro.engine.stats import StatisticsCollector
from repro.engine.template import Query, QueryTemplate, SlotForm
from repro.errors import PlanningError

__all__ = [
    "Plan",
    "CompiledPlan",
    "DriverCandidate",
    "driver_candidates",
    "choose_driver_slot",
    "compile_plan",
    "plan_query",
]


@dataclass
class Plan:
    """An executable plan: a root operator plus its source query."""

    root: Operator
    query: Query
    blocking: bool

    def execute(self) -> Iterator[Row]:
        """Yield result rows (with the expanded select list ``Ls'``)."""
        return self.root.execute()

    def execute_batches(self) -> Iterator[list[Row]]:
        """Yield result rows in batches (page/probe granularity)."""
        return iter_batches(self.root)

    def execute_column_batches(self) -> Iterator[ColumnBatch]:
        """Yield the result as :class:`ColumnBatch`es (the vectorized
        path — no :class:`Row` objects until someone asks for them)."""
        return iter_column_batches(self.root)

    def run(self) -> list[Row]:
        """Execute to completion and return all rows."""
        return [row for batch in iter_batches(self.root) for row in batch]

    def explain(self) -> str:
        return self.root.explain()


# -- compile-time analysis ------------------------------------------------------


@dataclass(frozen=True)
class DriverCandidate:
    """A slot whose condition a usable index can drive the plan by."""

    slot_index: int
    relation: str
    column: str


@dataclass(frozen=True)
class _PredicateRecipe:
    """How to build one relation's residual predicate from a bound query:
    AND the conditions of ``slot_indices`` with the ``fixed`` conditions."""

    slot_indices: tuple[int, ...]
    fixed: tuple[SelectionCondition, ...]

    def build(self, conditions: Sequence[SelectionCondition]):
        parts = [conditions[i] for i in self.slot_indices]
        parts.extend(self.fixed)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0].matches
        conds = tuple(parts)

        def predicate(row: Row) -> bool:
            return all(c.matches(row) for c in conds)

        return predicate

    def build_tests(self, conditions: Sequence[SelectionCondition]):
        """The same residual predicate in vector form: ``(column,
        value_test)`` pairs for :class:`ColumnBatch` filtering."""
        parts = [conditions[i] for i in self.slot_indices]
        parts.extend(self.fixed)
        return tuple((c.column, c.value_test()) for c in parts)


def _recipes_by_relation(template: QueryTemplate) -> dict[str, _PredicateRecipe]:
    """Group slot indices and fixed conditions by their relation."""
    slot_indices: dict[str, list[int]] = {name: [] for name in template.relations}
    fixed: dict[str, list[SelectionCondition]] = {name: [] for name in template.relations}
    for i, slot in enumerate(template.slots):
        slot_indices[slot.relation].append(i)
    for condition in template.fixed_conditions:
        relation = condition.column.split(".", 1)[0]
        if relation not in fixed:
            raise PlanningError(
                f"fixed condition on unknown relation: {condition.column!r}"
            )
        fixed[relation].append(condition)
    return {
        name: _PredicateRecipe(tuple(slot_indices[name]), tuple(fixed[name]))
        for name in template.relations
    }


def driver_candidates(catalog: Catalog, template: QueryTemplate) -> list[DriverCandidate]:
    """Slots that could drive the plan: their form has a usable index.

    A template-level property — interval slots need an ordered index,
    equality slots any index — so it is computed once per compile.
    """
    candidates: list[DriverCandidate] = []
    for i, slot in enumerate(template.slots):
        need_range = slot.form is SlotForm.INTERVAL
        index = catalog.find_index(slot.relation, slot.column, require_range=need_range)
        if index is not None:
            candidates.append(DriverCandidate(i, slot.relation, slot.column))
    return candidates


def _estimate_driver_rows(
    statistics: StatisticsCollector, relation: str, condition: SelectionCondition
) -> float | None:
    """Estimated rows an index scan on ``condition`` would fetch, or
    ``None`` when no statistics are available for the relation."""
    if not statistics.has_table(relation):
        return None
    table = statistics.table(relation)
    column_stats = table.column(condition.column)
    if isinstance(condition, EqualityDisjunction):
        selectivity = column_stats.disjunction_selectivity(condition.values)
    else:
        selectivity = min(
            sum(column_stats.interval_selectivity(iv) for iv in condition.intervals),
            1.0,
        )
    return selectivity * table.row_count


def choose_driver_slot(
    candidates: Sequence[DriverCandidate],
    query: Query,
    statistics: StatisticsCollector | None = None,
) -> int | None:
    """Pick the slot whose index drives the plan, or ``None`` for a
    sequential scan of the first relation.

    With statistics (the Section 4.2 ``ANALYZE`` equivalent), the
    usable-indexed slot with the *lowest estimated row count* for this
    query's bound values drives; without them, the first usable-indexed
    slot in template order does.
    """
    if not candidates:
        return None
    if statistics is not None:
        estimated: list[tuple[float, int, int]] = []
        for order, candidate in enumerate(candidates):
            condition = query.cselect.conditions[candidate.slot_index]
            rows = _estimate_driver_rows(statistics, candidate.relation, condition)
            if rows is not None:
                estimated.append((rows, order, candidate.slot_index))
        if len(estimated) == len(candidates):
            estimated.sort()
            return estimated[0][2]
    return candidates[0].slot_index


# -- compiled plans -------------------------------------------------------------


@dataclass(frozen=True)
class _EdgeFilterStep:
    """A redundant join edge applied as a residual equality filter."""

    left_col: str
    right_col: str
    label: str


@dataclass(frozen=True)
class _JoinStep:
    """Join one more relation into the pipeline."""

    inner_relation: HeapRelation
    inner_index: HashIndex | OrderedIndex | None  # None -> hash join
    outer_key: str
    inner_key: str  # bare column, used by the hash-join fallback
    recipe: _PredicateRecipe


@dataclass(frozen=True)
class CompiledPlan:
    """A parameterized plan skeleton for one (template, blocking, driver).

    Everything that is a function of the template and the catalog —
    driver access path, join order, predicate recipes, projection —
    is resolved here once; :meth:`bind` substitutes one query's bound
    slot values and returns an executable :class:`Plan`.

    A compiled plan resolves catalog objects (relations, indexes) at
    compile time, so it is only valid for the catalog version it was
    compiled against; the plan cache re-compiles on DDL.
    """

    template: QueryTemplate
    blocking: bool
    catalog_version: int
    driver_slot: int | None
    driver_relation: HeapRelation
    driver_index: HashIndex | OrderedIndex | None
    driver_is_range: bool
    driver_recipe: _PredicateRecipe
    steps: tuple[_EdgeFilterStep | _JoinStep, ...]
    project_names: tuple[str, ...]

    def bind(self, query: Query, batch_rows: int | None = None) -> Plan:
        """Stamp out an executable plan for one bound query.

        ``batch_rows`` is the columnar coalescing target for the plan's
        scans (``None`` → :data:`DEFAULT_BATCH_ROWS`); the row path
        ignores it.  Every predicate is bound in both forms — a row
        closure for the row path and ``(column, value_test)`` pairs for
        the vector path — so one compiled skeleton serves both.
        """
        if query.template is not self.template:
            raise PlanningError("query is from a different template")
        if batch_rows is None:
            batch_rows = DEFAULT_BATCH_ROWS
        conditions = query.cselect.conditions
        root: Operator
        driver_predicate = self.driver_recipe.build(conditions)
        driver_tests = self.driver_recipe.build_tests(conditions)
        if self.driver_slot is None:
            root = SeqScan(
                self.driver_relation,
                predicate=driver_predicate,
                tests=driver_tests,
                batch_rows=batch_rows,
            )
        else:
            driver_condition = conditions[self.driver_slot]
            assert self.driver_index is not None
            if self.driver_is_range:
                assert isinstance(driver_condition, IntervalDisjunction)
                root = IndexRangeScan(
                    self.driver_relation,
                    self.driver_index,
                    driver_condition.intervals,
                    predicate=driver_predicate,
                    tests=driver_tests,
                    batch_rows=batch_rows,
                )
            else:
                assert isinstance(driver_condition, EqualityDisjunction)
                root = IndexEqualityScan(
                    self.driver_relation,
                    self.driver_index,
                    driver_condition.values,
                    predicate=driver_predicate,
                    tests=driver_tests,
                    batch_rows=batch_rows,
                )
        for step in self.steps:
            if isinstance(step, _EdgeFilterStep):
                root = Filter(
                    root,
                    lambda row, lc=step.left_col, rc=step.right_col: row[lc] == row[rc],
                    label=step.label,
                    equal_columns=(step.left_col, step.right_col),
                )
            else:
                inner_predicate = step.recipe.build(conditions)
                inner_tests = step.recipe.build_tests(conditions)
                if step.inner_index is not None:
                    root = IndexNestedLoopJoin(
                        root,
                        step.inner_relation,
                        step.inner_index,
                        step.outer_key,
                        inner_predicate,
                        inner_tests=inner_tests,
                    )
                else:
                    root = NestedLoopJoin(
                        root,
                        step.inner_relation,
                        step.inner_key,
                        step.outer_key,
                        inner_predicate,
                        inner_tests=inner_tests,
                    )
        root = Project(root, self.project_names)
        if self.blocking:
            root = Materialize(root)
        return Plan(root=root, query=query, blocking=self.blocking)


def compile_plan(
    catalog: Catalog,
    template: QueryTemplate,
    blocking: bool,
    driver_slot: int | None,
) -> CompiledPlan:
    """Compile the plan skeleton for ``template`` driven by ``driver_slot``.

    ``driver_slot`` is the index of the ``Cselect`` slot whose index
    probes drive the plan (from :func:`choose_driver_slot`), or ``None``
    for a sequential scan of the template's first relation.
    """
    recipes = _recipes_by_relation(template)

    if driver_slot is None:
        driver = template.relations[0]
        driver_index = None
        driver_is_range = False
        driver_recipe = recipes[driver]
    else:
        slot = template.slots[driver_slot]
        driver = slot.relation
        driver_is_range = slot.form is SlotForm.INTERVAL
        driver_index = catalog.find_index(
            driver, slot.column, require_range=driver_is_range
        )
        if driver_index is None:
            raise PlanningError(
                f"slot {slot.column!r} has no usable index to drive the plan"
            )
        base = recipes[driver]
        driver_recipe = _PredicateRecipe(
            tuple(i for i in base.slot_indices if i != driver_slot), base.fixed
        )
    driver_relation = catalog.relation(driver)

    # Join the remaining relations along Cjoin's equi-join edges.
    steps: list[_EdgeFilterStep | _JoinStep] = []
    planned = {driver}
    pending_edges: list[JoinEquality] = list(template.joins)
    while len(planned) < len(template.relations):
        progressed = False
        for edge in list(pending_edges):
            left_in = edge.left_relation in planned
            right_in = edge.right_relation in planned
            if left_in and right_in:
                # Redundant edge: apply as a residual filter.
                pending_edges.remove(edge)
                steps.append(
                    _EdgeFilterStep(
                        edge.qualified_left(), edge.qualified_right(), str(edge)
                    )
                )
                progressed = True
                continue
            if not left_in and not right_in:
                continue
            if left_in:
                outer_key = edge.qualified_left()
                inner_name, inner_col = edge.right_relation, edge.qualified_right()
            else:
                outer_key = edge.qualified_right()
                inner_name, inner_col = edge.left_relation, edge.qualified_left()
            inner_relation = catalog.relation(inner_name)
            inner_index = catalog.find_index(inner_name, inner_col)
            bare_inner = inner_col.split(".", 1)[1] if "." in inner_col else inner_col
            # No join-attribute index: fall back to a hash join over a
            # one-shot scan of the inner relation (inner_index is None).
            steps.append(
                _JoinStep(
                    inner_relation=inner_relation,
                    inner_index=inner_index,
                    outer_key=outer_key,
                    inner_key=bare_inner,
                    recipe=recipes[inner_name],
                )
            )
            planned.add(inner_name)
            pending_edges.remove(edge)
            progressed = True
        if not progressed:
            missing = set(template.relations) - planned
            raise PlanningError(
                f"join graph of {template.name!r} is disconnected; "
                f"cannot reach {sorted(missing)}"
            )
    # Any leftover edges connect already-planned relations.
    for edge in pending_edges:
        steps.append(
            _EdgeFilterStep(edge.qualified_left(), edge.qualified_right(), str(edge))
        )

    return CompiledPlan(
        template=template,
        blocking=blocking,
        catalog_version=catalog.version,
        driver_slot=driver_slot,
        driver_relation=driver_relation,
        driver_index=driver_index,
        driver_is_range=driver_is_range,
        driver_recipe=driver_recipe,
        steps=tuple(steps),
        project_names=template.expanded_select_list(),
    )


def plan_query(
    catalog: Catalog,
    query: Query,
    blocking: bool = True,
    statistics: StatisticsCollector | None = None,
    batch_rows: int | None = None,
) -> Plan:
    """Build a plan for ``query`` (one-shot compile + bind).

    Parameters
    ----------
    catalog:
        Catalog supplying relations and indexes.
    query:
        A bound ``qt``-form query.
    blocking:
        Materialize the full result before emitting the first row,
        modelling the traditional (blocking) execution the paper
        contrasts PMVs with.  The PMV layer leaves this ``True``.
    statistics:
        Optional ANALYZE output; when present and covering the
        candidate relations, the most selective indexed slot drives
        the plan.
    """
    candidates = driver_candidates(catalog, query.template)
    driver_slot = choose_driver_slot(candidates, query, statistics)
    compiled = compile_plan(catalog, query.template, blocking, driver_slot)
    return compiled.bind(query, batch_rows=batch_rows)
