"""``repro.engine`` — the from-scratch RDBMS substrate.

Storage (pages, simulated disk, buffer pool, heap files), secondary
indexes, the ``qt``-form predicate/template model, a rule-based planner
with Volcano-style operators, and S/X locking.  The PMV layer in
:mod:`repro.core` builds on these interfaces only.
"""

from repro.engine.bufferpool import BufferPool, BufferPoolStats
from repro.engine.catalog import Catalog
from repro.engine.database import Database
from repro.engine.datatypes import (
    BIGINT,
    DATE,
    FLOAT,
    INTEGER,
    MINUS_INFINITY,
    PLUS_INFINITY,
    DataType,
    Infinity,
    TypeKind,
    TEXT,
)
from repro.engine.disk import DiskManager, IOStats, LatencyModel
from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex, build_index
from repro.engine.locks import LockManager, LockMode
from repro.engine.page import PAGE_SIZE, Page
from repro.engine.parser import parse_query, parse_template
from repro.engine.planner import Plan, plan_query
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    SelectionCondition,
    SelectionConjunction,
)
from repro.engine.row import Row, RowId
from repro.engine.schema import Column, Schema
from repro.engine.stats import ColumnStatistics, StatisticsCollector, TableStatistics
from repro.engine.template import Query, QueryTemplate, SelectionSlot, SlotForm
from repro.engine.transactions import Change, ChangeKind, Transaction, TxnStatus
from repro.engine.snapshot import (
    checkpoint,
    recover_from_snapshot,
    restore_snapshot,
    take_snapshot,
)
from repro.engine.wal import LogKind, LogRecord, WriteAheadLog, recover

__all__ = [
    "BIGINT",
    "BufferPool",
    "BufferPoolStats",
    "Catalog",
    "Change",
    "ChangeKind",
    "Column",
    "DATE",
    "DataType",
    "Database",
    "DiskManager",
    "EqualityDisjunction",
    "FLOAT",
    "HashIndex",
    "HeapRelation",
    "INTEGER",
    "IOStats",
    "Infinity",
    "Interval",
    "IntervalDisjunction",
    "JoinEquality",
    "LatencyModel",
    "LockManager",
    "LockMode",
    "LogKind",
    "LogRecord",
    "WriteAheadLog",
    "recover",
    "MINUS_INFINITY",
    "OrderedIndex",
    "PAGE_SIZE",
    "PLUS_INFINITY",
    "Page",
    "Plan",
    "Query",
    "QueryTemplate",
    "Row",
    "RowId",
    "Schema",
    "SelectionCondition",
    "SelectionConjunction",
    "SelectionSlot",
    "SlotForm",
    "StatisticsCollector",
    "TEXT",
    "TableStatistics",
    "ColumnStatistics",
    "Transaction",
    "TxnStatus",
    "TypeKind",
    "build_index",
    "checkpoint",
    "parse_query",
    "parse_template",
    "plan_query",
    "recover_from_snapshot",
    "restore_snapshot",
    "take_snapshot",
]
