"""The :class:`Database` facade.

Ties together the disk manager, buffer pool, catalog, and lock manager,
and keeps secondary indexes synchronized with every heap mutation.
Base-relation changes are broadcast to registered listeners — the PMV
maintenance layer subscribes to these to implement Section 3.4's
deferred maintenance without the engine knowing anything about PMVs.

Concurrency model (see DESIGN.md §8): physical structures (heap pages,
indexes, WAL, statistics) are serialized by ``statement_latch``, a
re-entrant short-term latch held only for the in-memory portion of a
statement.  *Logical* conflicts are the lock manager's job, and lock
acquisition is strictly ordered **before** the latch: every DML
statement runs its prepare phase — where PMV maintenance takes its X
lock, possibly waiting — with the latch released, then re-enters the
latch to mutate.  A thread never waits on a lock while holding the
latch, so the latch can never participate in a deadlock.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Sequence

from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Catalog
from repro.engine.disk import DiskManager, IOStats, LatencyModel
from repro.engine.heap import HeapRelation
from repro.engine.index import build_index
from repro.engine.locks import LockManager
from repro.engine.operators import DEFAULT_BATCH_ROWS
from repro.engine.planner import (
    CompiledPlan,
    Plan,
    choose_driver_slot,
    compile_plan,
    driver_candidates,
    plan_query,
)
from repro.engine.row import Row, RowId
from repro.engine.schema import Column, Schema
from repro.engine.stats import StatisticsCollector, TableStatistics
from repro.engine.template import Query, QueryTemplate
from repro.engine.transactions import Change, ChangeKind, Transaction
from repro.engine.wal import (
    LogKind,
    WriteAheadLog,
    log_create_index,
    log_create_relation,
)
from repro.errors import DiskFullError, WALFencedError, is_control_exception

__all__ = ["Database", "PlanCache"]

ChangeListener = Callable[[Change, Transaction | None], None]


class _TemplatePlans:
    """Compiled plans of one (template, blocking) pair, one per driver."""

    __slots__ = ("catalog_version", "candidates", "compiled")

    def __init__(self, catalog_version, candidates) -> None:
        self.catalog_version = catalog_version
        self.candidates = candidates
        self.compiled: dict[int | None, CompiledPlan] = {}


class PlanCache:
    """Template-level cache of compiled plan skeletons.

    Plan *structure* is a function of the template, the blocking flag,
    and the chosen driver access path — not of the bound slot values —
    so the cache compiles once per (template, blocking, driver) and
    re-binds the compiled skeleton per query.  Driver selection itself
    stays per-query (it reads the bound values through ANALYZE
    statistics), which keeps the statistics-directed plan choice of
    Section 4.2 intact.

    Entries are invalidated by comparing the catalog's DDL version
    counter: creating or dropping a relation or index bumps it, and the
    next ``plan()`` recompiles against the new catalog.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._families: dict[tuple[Any, bool], _TemplatePlans] = {}
        self._mutex = threading.Lock()
        self.hits = 0
        self.compilations = 0

    def plan(
        self, query, blocking: bool, statistics=None, batch_rows: int | None = None
    ) -> Plan:
        """Bind (compiling if needed) a plan for ``query``."""
        catalog = self._catalog
        key = (query.template, blocking)
        with self._mutex:
            family = self._families.get(key)
            if family is None or family.catalog_version != catalog.version:
                family = _TemplatePlans(
                    catalog.version, driver_candidates(catalog, query.template)
                )
                self._families[key] = family
            driver_slot = choose_driver_slot(family.candidates, query, statistics)
            compiled = family.compiled.get(driver_slot)
            if compiled is None:
                compiled = compile_plan(catalog, query.template, blocking, driver_slot)
                family.compiled[driver_slot] = compiled
                self.compilations += 1
            else:
                self.hits += 1
        return compiled.bind(query, batch_rows=batch_rows)

    def clear(self) -> None:
        with self._mutex:
            self._families.clear()

    def info(self) -> dict[str, int]:
        """Counters for tests and benchmark reporting."""
        with self._mutex:
            return {
                "hits": self.hits,
                "compilations": self.compilations,
                "templates": len(self._families),
            }


class Database:
    """A single-node database instance.

    Parameters
    ----------
    buffer_pool_pages:
        Buffer pool capacity; defaults to the paper's PostgreSQL
        default of 1,000 pages.
    page_size:
        Page capacity in bytes.
    wal:
        Optional write-ahead log; when set, every DDL/DML statement is
        logged the moment it succeeds.
    disk:
        Optional pre-built disk manager (dependency injection — the
        fault-injection harness passes a
        :class:`repro.faults.inject.FaultyDiskManager` here).  Defaults
        to a fresh :class:`DiskManager`.
    """

    def __init__(
        self,
        buffer_pool_pages: int = 1000,
        page_size: int = 8192,
        wal: WriteAheadLog | None = None,
        disk: DiskManager | None = None,
    ) -> None:
        self.disk = disk if disk is not None else DiskManager(page_size=page_size)
        self.wal = wal
        self.buffer_pool = BufferPool(self.disk, capacity=buffer_pool_pages)
        self.catalog = Catalog()
        self.lock_manager = LockManager()
        self.latency_model = LatencyModel()
        self.statistics = StatisticsCollector()
        self.plan_cache = PlanCache(self.catalog)
        # Columnar coalescing target: scans merge small pages/probes up
        # to this many rows per ColumnBatch.  Plan skeletons are cached
        # independently of it (it only affects bind-time batching).
        self.batch_rows = DEFAULT_BATCH_ROWS
        # Short-term re-entrant latch serializing the in-memory part of
        # every statement (heap + index + WAL mutation, result
        # materialization).  Held only while no lock wait can occur —
        # see the module docstring's lock-before-latch rule.
        self.statement_latch = threading.RLock()
        # Optional deterministic interleaving scheduler (repro.faults.sched),
        # shared with the lock manager.  None (and zero-cost) in production.
        self.scheduler = None
        # Optional fault-injection hook (repro.faults), threaded into
        # every transaction this database begins and fired by the PMV
        # maintenance layer at its prepare/apply sites.  None (and
        # zero-cost) in production.
        self.fault_hook: Callable[[str], None] | None = None
        # Transactional outbox (repro.cdc): when attached, every DML
        # statement appends its change record here inside the same
        # latched critical section as the WAL append, stamped with the
        # WAL LSN — so the feed order is the serialization order.
        # None (and zero-cost) when async maintenance is off.
        self.outbox = None
        self._listeners: list[ChangeListener] = []
        self._prepare_listeners: list[ChangeListener] = []
        self._abort_listeners: list[ChangeListener] = []
        # Exceptions eaten by fail-safe paths (best-effort abort
        # notification): each one bumps this counter so "silently
        # swallowed" is at least never silent (DESIGN.md §10).
        self.swallowed_errors = 0
        # Disk-full degradation (DESIGN.md §15): while the space probes
        # fail, the instance is read-only — queries keep serving, DML
        # is refused with a typed DiskFullError, and the first
        # successful probe clears the condition automatically.
        self.disk_full = False
        self.disk_full_refusals = 0
        self.disk_full_recoveries = 0

    # -- DDL ---------------------------------------------------------------------

    def create_relation(self, name: str, columns: Sequence[Column]) -> HeapRelation:
        """Create a heap relation and register it in the catalog."""
        schema = Schema(columns, relation_name=name)
        relation = HeapRelation(name, schema, self.buffer_pool)
        registered = self.catalog.add_relation(relation)
        if self.wal is not None:
            log_create_relation(self.wal, name, list(columns))
        return registered

    def create_index(
        self,
        name: str,
        relation_name: str,
        key_columns: Sequence[str],
        ordered: bool = False,
    ):
        """Create (and backfill) an index; register it in the catalog."""
        relation = self.catalog.relation(relation_name)
        index = build_index(name, relation, key_columns, ordered=ordered)
        registered = self.catalog.add_index(index)
        if self.wal is not None:
            log_create_index(self.wal, name, relation_name, key_columns, ordered)
        return registered

    def drop_index(self, name: str) -> None:
        """Drop an index; cached plans referencing it are invalidated
        through the catalog version bump."""
        self.catalog.drop_index(name)

    def register_template(self, template: QueryTemplate) -> QueryTemplate:
        return self.catalog.add_template(template)

    # -- transactions ----------------------------------------------------------------

    def begin(self, read_only: bool = False) -> Transaction:
        return Transaction(
            self.lock_manager, read_only=read_only, fault_hook=self.fault_hook
        )

    def current_lsn(self) -> int:
        """The newest serialization position: the WAL's last LSN when
        logging, else the outbox's own sequence (0 with neither).
        Freshness accounting measures PMV staleness against this."""
        if self.wal is not None:
            return self.wal.last_lsn
        if self.outbox is not None:
            return self.outbox.last_lsn
        return 0

    def install_scheduler(self, sched) -> None:
        """Install (or with ``None`` remove) a deterministic
        interleaving scheduler; it is shared with the lock manager so
        lock waits and grants become scheduler decision points."""
        self.scheduler = sched
        self.lock_manager.sched = sched

    # -- change listeners --------------------------------------------------------------

    def add_change_listener(self, listener: ChangeListener) -> None:
        """Subscribe to base-relation changes (used by PMV maintenance)."""
        self._listeners.append(listener)

    def remove_change_listener(self, listener: ChangeListener) -> None:
        self._listeners.remove(listener)

    def add_prepare_listener(self, listener: ChangeListener) -> None:
        """Subscribe to the *prepare* phase: called with the prospective
        change BEFORE the heap/indexes are touched.  A listener that
        raises (e.g. a lock denial) aborts the statement cleanly —
        this is how two-phase locking orders lock acquisition before
        the write (Section 3.6's X-lock-before-update)."""
        self._prepare_listeners.append(listener)

    def remove_prepare_listener(self, listener: ChangeListener) -> None:
        self._prepare_listeners.remove(listener)

    def add_abort_listener(self, listener: ChangeListener) -> None:
        """Called when a prepared statement fails before completion, so
        prepare-phase listeners can release resources."""
        self._abort_listeners.append(listener)

    def remove_abort_listener(self, listener: ChangeListener) -> None:
        self._abort_listeners.remove(listener)

    def _notify_prepare(self, change: Change, txn: Transaction | None) -> None:
        for listener in self._prepare_listeners:
            listener(change, txn)

    def _notify_abort(self, change: Change, txn: Transaction | None) -> None:
        """Best-effort: every abort listener gets its chance to release
        resources even if an earlier one raises.  A listener's own
        exception cannot be allowed to mask the statement failure that
        triggered the abort, so it is eaten — but counted, never
        silently (``swallowed_errors``).  Control-flow exceptions
        (KeyboardInterrupt, injected crashes, scheduler markers) are
        re-raised after the remaining listeners ran."""
        control: BaseException | None = None
        for listener in self._abort_listeners:
            try:
                listener(change, txn)
            except BaseException as exc:
                if is_control_exception(exc):
                    control = exc
                else:
                    self.swallowed_errors += 1
        if control is not None:
            raise control

    def _notify(self, change: Change, txn: Transaction | None) -> None:
        if txn is not None:
            txn.record_change(change)
        for listener in self._listeners:
            listener(change, txn)

    # -- DML -----------------------------------------------------------------------------

    def _check_fence(self) -> None:
        """Refuse writes on a fenced instance *before* any mutation.

        A deposed primary's WAL rejects appends, but by the time the
        append runs the heap and indexes are already mutated — the
        zombie would diverge from its own log.  Checking up front keeps
        a fenced instance read-only and internally consistent.
        """
        if self.wal is not None and self.wal.fenced_by_epoch is not None:
            raise WALFencedError(
                f"instance is fenced (epoch {self.wal.fenced_by_epoch} promoted "
                f"elsewhere); writes are refused"
            )

    def _check_writable(self) -> None:
        """Every pre-mutation admission check for a DML statement.

        Fencing first, then the disk-space probes (WAL reserve +
        deferred segment rotation, page-write reserve).  A probe
        failure is the read-only degradation entry point: the statement
        is refused with a typed :class:`~repro.errors.DiskFullError`
        while nothing has mutated, so queries — including PMV-backed
        partial answers — keep serving from the intact in-memory state.
        The next statement whose probes succeed flips the instance back
        to writable (auto-recovery; no operator reset needed).
        """
        self._check_fence()
        try:
            if self.wal is not None:
                self.wal.reserve()
            self.disk.ensure_space()
        except DiskFullError:
            self.disk_full = True
            self.disk_full_refusals += 1
            raise
        if self.disk_full:
            self.disk_full = False
            self.disk_full_recoveries += 1

    def insert(
        self,
        relation_name: str,
        values: Sequence[Any],
        txn: Transaction | None = None,
        idem: str | None = None,
    ) -> RowId:
        """Insert a row, maintain indexes, and broadcast the change.

        The prepare phase (where maintenance may wait for an X lock)
        runs with the statement latch released; the heap/index/WAL
        mutation and the change broadcast are one latched critical
        section, so listeners observe changes in serialization order.

        ``idem`` is an optional idempotency key carried verbatim in the
        statement's WAL payload (and through replica replay), letting
        the network tier rebuild its at-most-once dedup table from the
        log after a crash or failover.
        """
        self._check_writable()
        relation = self.catalog.relation(relation_name)
        prospective = Row(relation.schema.validate_values(values), relation.schema)
        change = Change(ChangeKind.INSERT, relation_name, new_row=prospective)
        self._notify_prepare(change, txn)
        with self.statement_latch:
            try:
                row_id = relation.insert(values)
                row = relation.fetch(row_id)
                for index in self.catalog.indexes_on(relation_name):
                    index.insert(row, row_id)
            except BaseException:
                # BaseException on purpose: the abort broadcast releases
                # prepared X locks, cleanup that must happen even when a
                # KeyboardInterrupt or injected crash unwinds the
                # statement.  _notify_abort itself is best-effort and
                # swallows nothing silently.
                self._notify_abort(change, txn)
                raise
            if self.wal is not None:
                payload = {"relation": relation_name, "values": list(row.values)}
                if idem is not None:
                    payload["idem"] = idem
                self.wal.append(LogKind.INSERT, payload)
            applied = Change(ChangeKind.INSERT, relation_name, new_row=row)
            if self.outbox is not None:
                if self.scheduler is not None:
                    # Interleaving seam: the window between the WAL
                    # append (LSN bumped) and the outbox append (feed
                    # record visible) — the phantom-freshness race site.
                    self.scheduler.switch("dml.outbox-append")
                self.outbox.append(
                    applied, self.wal.last_lsn if self.wal is not None else None
                )
            self._notify(applied, txn)
        return row_id

    def insert_many(
        self,
        relation_name: str,
        rows: Sequence[Sequence[Any]],
        txn: Transaction | None = None,
    ) -> list[RowId]:
        return [self.insert(relation_name, values, txn=txn) for values in rows]

    def delete(
        self,
        relation_name: str,
        row_id: RowId,
        txn: Transaction | None = None,
        idem: str | None = None,
    ) -> Row:
        """Delete the row at ``row_id``; returns the deleted row.

        The prepare phase runs before the heap or any index is touched,
        so a lock denial aborts the statement with no base change.
        """
        self._check_writable()
        relation = self.catalog.relation(relation_name)
        with self.statement_latch:
            row = relation.fetch(row_id)
        change = Change(ChangeKind.DELETE, relation_name, old_row=row)
        self._notify_prepare(change, txn)
        with self.statement_latch:
            try:
                for index in self.catalog.indexes_on(relation_name):
                    index.delete(row, row_id)
                relation.delete(row_id)
            except BaseException:
                # See insert(): cleanup broadcast, runs for control
                # exceptions too, never a silent swallow.
                self._notify_abort(change, txn)
                raise
            if self.wal is not None:
                payload = {
                    "relation": relation_name,
                    "page_no": row_id.page_no,
                    "slot_no": row_id.slot_no,
                }
                if idem is not None:
                    payload["idem"] = idem
                self.wal.append(LogKind.DELETE, payload)
            if self.outbox is not None:
                if self.scheduler is not None:
                    # Interleaving seam: see insert().
                    self.scheduler.switch("dml.outbox-append")
                self.outbox.append(
                    change, self.wal.last_lsn if self.wal is not None else None
                )
            self._notify(change, txn)
        return row

    def delete_where(
        self,
        relation_name: str,
        predicate: Callable[[Row], bool],
        txn: Transaction | None = None,
        idem: str | None = None,
    ) -> list[Row]:
        """Delete every row matching ``predicate``; returns them."""
        relation = self.catalog.relation(relation_name)
        with self.statement_latch:
            victims = [
                (row_id, row) for row_id, row in relation.scan() if predicate(row)
            ]
        deleted = []
        for row_id, _ in victims:
            deleted.append(self.delete(relation_name, row_id, txn=txn, idem=idem))
        return deleted

    def update(
        self,
        relation_name: str,
        row_id: RowId,
        txn: Transaction | None = None,
        idem: str | None = None,
        **changes: Any,
    ) -> tuple[Row, Row, RowId]:
        """Update named columns of one row; returns (old, new, new_id).

        The prepare phase (with the prospective new row) runs before
        any mutation, so lock denials and type errors abort cleanly.
        """
        self._check_writable()
        relation = self.catalog.relation(relation_name)
        with self.statement_latch:
            old_row = relation.fetch(row_id)
        prospective = old_row.replace(**changes)
        relation.schema.validate_values(prospective.values)
        change = Change(
            ChangeKind.UPDATE, relation_name, old_row=old_row, new_row=prospective
        )
        self._notify_prepare(change, txn)
        with self.statement_latch:
            try:
                for index in self.catalog.indexes_on(relation_name):
                    index.delete(old_row, row_id)
                old_row, new_row, new_id = relation.update(row_id, **changes)
                for index in self.catalog.indexes_on(relation_name):
                    index.insert(new_row, new_id)
            except BaseException:
                # See insert(): cleanup broadcast, runs for control
                # exceptions too, never a silent swallow.
                self._notify_abort(change, txn)
                raise
            if self.wal is not None:
                payload = {
                    "relation": relation_name,
                    "page_no": row_id.page_no,
                    "slot_no": row_id.slot_no,
                    "changes": dict(changes),
                }
                if idem is not None:
                    payload["idem"] = idem
                self.wal.append(LogKind.UPDATE, payload)
            applied = Change(
                ChangeKind.UPDATE, relation_name, old_row=old_row, new_row=new_row
            )
            if self.outbox is not None:
                if self.scheduler is not None:
                    # Interleaving seam: see insert().
                    self.scheduler.switch("dml.outbox-append")
                self.outbox.append(
                    applied, self.wal.last_lsn if self.wal is not None else None
                )
            self._notify(applied, txn)
        return old_row, new_row, new_id

    # -- statistics ------------------------------------------------------------------------

    def analyze(self, relation_name: str | None = None) -> TableStatistics | None:
        """Collect planner statistics (the paper's "statistics collection
        program").  Analyzes one relation, or all when none is named."""
        with self.statement_latch:
            if relation_name is not None:
                return self.statistics.analyze(self.catalog.relation(relation_name))
            for relation in self.catalog.relations():
                self.statistics.analyze(relation)
            return None

    # -- query execution -------------------------------------------------------------------

    def plan(self, query: Query, blocking: bool = True, use_cache: bool = True) -> Plan:
        """Plan ``query``, re-binding a cached compiled plan when possible.

        ``use_cache=False`` forces a from-scratch compile (the
        benchmark baseline and a debugging escape hatch); results are
        identical either way.
        """
        if not use_cache:
            return plan_query(
                self.catalog,
                query,
                blocking=blocking,
                statistics=self.statistics,
                batch_rows=self.batch_rows,
            )
        return self.plan_cache.plan(
            query, blocking, statistics=self.statistics, batch_rows=self.batch_rows
        )

    def execute(self, query: Query, blocking: bool = True) -> Iterator[Row]:
        """Plan and execute ``query``, yielding ``Ls'`` rows.

        The returned iterator is lazy and NOT latched — concurrent
        callers should use :meth:`run`, which materializes the result
        under the statement latch for a consistent snapshot.
        """
        return self.plan(query, blocking=blocking).execute()

    def run(self, query: Query, blocking: bool = True) -> list[Row]:
        plan = self.plan(query, blocking=blocking)
        with self.statement_latch:
            return plan.run()

    # -- accounting -----------------------------------------------------------------------

    def io_snapshot(self) -> IOStats:
        return self.disk.stats.snapshot()

    def io_since(self, snapshot: IOStats) -> IOStats:
        return self.disk.stats.delta(snapshot)
