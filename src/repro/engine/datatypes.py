"""Column datatypes for the mini RDBMS substrate.

The engine supports a deliberately small set of types — integers,
floats, fixed-point decimals (stored as floats, compared numerically),
strings, and dates (stored as ISO ``YYYY-MM-DD`` strings, which sort
correctly lexicographically).  Each type knows how to validate a Python
value, estimate its on-page size in bytes (used by the storage layer and
the PMV size accounting), and compare values.

The paper's interval conditions allow non-numeric attributes (Section
2.1: "R.a can be a non-numerical (e.g., string) attribute"), so ordering
must work uniformly across types; every type here defines a total order
over its domain.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any

from repro.errors import TypeMismatchError

__all__ = [
    "DataType",
    "TypeKind",
    "INTEGER",
    "BIGINT",
    "FLOAT",
    "TEXT",
    "DATE",
    "MINUS_INFINITY",
    "PLUS_INFINITY",
    "Infinity",
]


class TypeKind(enum.Enum):
    """Enumeration of supported column type kinds."""

    INTEGER = "integer"
    BIGINT = "bigint"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"


class Infinity:
    """Sentinel for unbounded interval endpoints.

    ``MINUS_INFINITY`` compares below every domain value and
    ``PLUS_INFINITY`` above, regardless of type.  Using dedicated
    sentinels (rather than ``float('inf')``) lets intervals over TEXT
    and DATE columns be unbounded too.
    """

    __slots__ = ("_sign",)

    def __init__(self, sign: int) -> None:
        if sign not in (-1, 1):
            raise ValueError("Infinity sign must be -1 or +1")
        self._sign = sign

    @property
    def sign(self) -> int:
        return self._sign

    def __lt__(self, other: Any) -> bool:
        if isinstance(other, Infinity):
            return self._sign < other._sign
        return self._sign < 0

    def __le__(self, other: Any) -> bool:
        return self == other or self < other

    def __gt__(self, other: Any) -> bool:
        if isinstance(other, Infinity):
            return self._sign > other._sign
        return self._sign > 0

    def __ge__(self, other: Any) -> bool:
        return self == other or self > other

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Infinity) and other._sign == self._sign

    def __hash__(self) -> int:
        return hash(("Infinity", self._sign))

    def __repr__(self) -> str:
        return "+inf" if self._sign > 0 else "-inf"


MINUS_INFINITY = Infinity(-1)
PLUS_INFINITY = Infinity(1)


def _is_valid_date_string(value: str) -> bool:
    """Check the ISO ``YYYY-MM-DD`` shape without importing datetime.

    Dates are stored as strings; lexicographic order equals calendar
    order for this shape, which is all the engine needs.
    """
    if len(value) != 10 or value[4] != "-" or value[7] != "-":
        return False
    y, m, d = value[:4], value[5:7], value[8:10]
    if not (y.isdigit() and m.isdigit() and d.isdigit()):
        return False
    return 1 <= int(m) <= 12 and 1 <= int(d) <= 31


@dataclass(frozen=True)
class DataType:
    """A column datatype.

    Parameters
    ----------
    kind:
        Which of the supported type kinds this is.
    width:
        For TEXT, the declared maximum width used for size estimation;
        ignored for other kinds.
    """

    kind: TypeKind
    width: int = 0

    def validate(self, value: Any) -> Any:
        """Validate ``value`` against this type and return it.

        ``None`` is accepted everywhere (SQL NULL).  Raises
        :class:`TypeMismatchError` for values outside the domain.
        """
        if value is None:
            return None
        if self.kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(
                    f"expected int for {self.kind.value}, got {type(value).__name__}"
                )
            return value
        if self.kind is TypeKind.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(
                    f"expected number for float, got {type(value).__name__}"
                )
            if isinstance(value, float) and math.isnan(value):
                raise TypeMismatchError("NaN is not a valid float column value")
            return float(value)
        if self.kind is TypeKind.TEXT:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"expected str for text, got {type(value).__name__}"
                )
            return value
        if self.kind is TypeKind.DATE:
            if not isinstance(value, str) or not _is_valid_date_string(value):
                raise TypeMismatchError(
                    f"expected 'YYYY-MM-DD' string for date, got {value!r}"
                )
            return value
        raise TypeMismatchError(f"unknown type kind {self.kind!r}")

    def byte_size(self, value: Any) -> int:
        """Estimated on-page size of ``value`` in bytes.

        The storage layer uses this to decide how many records fit on a
        page, and the PMV uses it for its UB (size upper bound)
        accounting.  NULL costs one byte (the null bitmap entry).
        """
        if value is None:
            return 1
        if self.kind is TypeKind.INTEGER:
            return 4
        if self.kind is TypeKind.BIGINT:
            return 8
        if self.kind is TypeKind.FLOAT:
            return 8
        if self.kind is TypeKind.DATE:
            return 10
        # TEXT: length bytes plus a 2-byte length header.
        return len(value) + 2

    def is_orderable(self) -> bool:
        """All supported types have a total order."""
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is TypeKind.TEXT and self.width:
            return f"text({self.width})"
        return self.kind.value


INTEGER = DataType(TypeKind.INTEGER)
BIGINT = DataType(TypeKind.BIGINT)
FLOAT = DataType(TypeKind.FLOAT)
TEXT = DataType(TypeKind.TEXT, width=32)
DATE = DataType(TypeKind.DATE)
