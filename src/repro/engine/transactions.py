"""Transactions.

A :class:`Transaction` scopes a unit of work: it owns locks (released
at commit/abort, i.e. strict two-phase locking) and records the base-
relation changes it made so the PMV maintenance layer can react to
them.  Transactions may be created from any thread (id allocation is
atomic); a single transaction is still owned by one thread at a time —
concurrency control between transactions is the lock manager's job.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any

from repro.engine.locks import LockManager, LockMode
from repro.engine.row import Row
from repro.errors import TransactionError

__all__ = ["Transaction", "TxnStatus", "ChangeKind", "Change"]


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class ChangeKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"


@dataclass(frozen=True)
class Change:
    """One base-relation change: the paper's ΔRi element.

    ``old_row`` is set for deletes/updates, ``new_row`` for
    inserts/updates.
    """

    kind: ChangeKind
    relation: str
    old_row: Row | None = None
    new_row: Row | None = None

    def __post_init__(self) -> None:
        if self.kind is ChangeKind.INSERT and self.new_row is None:
            raise TransactionError("insert change needs new_row")
        if self.kind is ChangeKind.DELETE and self.old_row is None:
            raise TransactionError("delete change needs old_row")
        if self.kind is ChangeKind.UPDATE and (self.old_row is None or self.new_row is None):
            raise TransactionError("update change needs old_row and new_row")


class Transaction:
    """A unit of work holding locks and capturing base-relation changes."""

    # itertools.count.__next__ is atomic under the GIL, so concurrent
    # begin() calls never hand out duplicate ids.
    _ids = itertools.count(1)

    def __init__(
        self,
        lock_manager: LockManager,
        read_only: bool = False,
        fault_hook=None,
    ) -> None:
        self.txn_id = next(Transaction._ids)
        self._locks = lock_manager
        self.read_only = read_only
        self.status = TxnStatus.ACTIVE
        self.changes: list[Change] = []
        # Optional fault-injection hook (repro.faults): fired at the
        # start of commit/abort, i.e. before the status flip and lock
        # release, so an injected failure models a crash or error while
        # the transaction is still in flight.  None in production.
        self._fault_hook = fault_hook

    # -- lifecycle ---------------------------------------------------------------

    def _check_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(f"txn {self.txn_id} is {self.status.value}")

    def commit(self) -> None:
        self._check_active()
        if self._fault_hook is not None:
            self._fault_hook("txn.commit")
        self.status = TxnStatus.COMMITTED
        self._locks.release_all(self.txn_id)

    def abort(self) -> None:
        self._check_active()
        if self._fault_hook is not None:
            self._fault_hook("txn.abort")
        self.status = TxnStatus.ABORTED
        self._locks.release_all(self.txn_id)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.status is TxnStatus.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    # -- locking -------------------------------------------------------------------

    def lock_shared(
        self, obj: str, wait: bool = False, timeout: float | None = None
    ) -> None:
        self._check_active()
        self._locks.acquire(self.txn_id, obj, LockMode.SHARED, wait=wait, timeout=timeout)

    def lock_exclusive(
        self, obj: str, wait: bool = False, timeout: float | None = None
    ) -> None:
        self._check_active()
        if self.read_only:
            raise TransactionError(
                f"read-only txn {self.txn_id} cannot take X({obj})"
            )
        self._locks.acquire(
            self.txn_id, obj, LockMode.EXCLUSIVE, wait=wait, timeout=timeout
        )

    def holds_shared(self, obj: str) -> bool:
        return self._locks.holds(self.txn_id, obj, LockMode.SHARED)

    def holds_exclusive(self, obj: str) -> bool:
        return self._locks.holds(self.txn_id, obj, LockMode.EXCLUSIVE)

    # -- change capture --------------------------------------------------------------

    def record_change(self, change: Change) -> None:
        self._check_active()
        if self.read_only:
            raise TransactionError(f"read-only txn {self.txn_id} cannot write")
        self.changes.append(change)
