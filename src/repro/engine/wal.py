"""Write-ahead logging and crash recovery.

The engine's durability story, kept deliberately simple but honest:

- every DDL statement (CREATE TABLE / CREATE INDEX) and every DML
  statement (INSERT / DELETE / UPDATE) appends a :class:`LogRecord`
  the moment it succeeds — the log is the database of record, and the
  in-memory heap/indexes are a cache of it (statement-level
  commit-at-log semantics: a statement interrupted before its record
  is durable simply never happened);
- the log lives in memory and, optionally, on disk so it survives a
  process crash — either as a single JSON-lines file, or (with
  ``segment_bytes``) as a directory of rotating fixed-budget segments
  whose reclaimed prefix moves to an archive tier (DESIGN.md §15);
- every serialized record carries a CRC32 over its canonical body
  (``lsn``/``kind``/``payload``), verified whenever the record is read
  back — on crash-recovery replay and again on the replication ship
  path — so bit rot is detected loudly instead of being replayed into
  a fresh instance;
- :func:`recover` replays a log into a fresh :class:`Database`.  Replay
  is deterministic — row ids are allocated in the same order as the
  original execution — so DELETE/UPDATE records can address rows by
  their original (page, slot) ids.

Segmented logs bound the resources a run-forever instance consumes:
:meth:`WriteAheadLog.reclaim` moves every segment fully covered by the
last checkpoint *and* every registered consumer (replication links, the
CDC maintainer — see :class:`LsnRetentionRegistry`) into the archive,
and prunes the in-memory record list to match.  A lagging consumer
reads the reclaimed prefix back transparently: :meth:`records` falls
through to the archived segment files (CRC-verified on the way in), so
a slow replica retransmits from archive instead of being forced into a
snapshot bootstrap.

PMVs deliberately do **not** participate in recovery: a PMV is a cache
of re-derivable results, so after a crash it simply restarts empty and
refills from query execution — one more consequence of the paper's
"PMV is any subset of its containing MV" definition (an empty subset is
a correct subset).
"""

from __future__ import annotations

import enum
import errno as _errno
import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.engine.datatypes import DataType, TypeKind
from repro.engine.row import RowId
from repro.engine.schema import Column
from repro.errors import (
    DiskFullError,
    EngineError,
    WALChecksumError,
    WALCorruptionError,
    WALFencedError,
)

__all__ = [
    "LogKind",
    "LogRecord",
    "LsnRetentionRegistry",
    "WriteAheadLog",
    "recover",
    "replay_record",
]


class LogKind(enum.Enum):
    CREATE_RELATION = "create_relation"
    CREATE_INDEX = "create_index"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry.

    ``payload`` is a JSON-safe dict whose shape depends on ``kind``:

    - CREATE_RELATION: ``{"name", "columns": [[name, type, nullable]]}``
    - CREATE_INDEX: ``{"name", "relation", "key_columns", "ordered"}``
    - INSERT: ``{"relation", "values"}``
    - DELETE: ``{"relation", "page_no", "slot_no"}``
    - UPDATE: ``{"relation", "page_no", "slot_no", "changes"}``
    - CHECKPOINT: ``{}``
    """

    lsn: int
    kind: LogKind
    payload: dict[str, Any]

    def body_json(self) -> str:
        """The canonical serialized body the CRC covers."""
        return json.dumps(
            {"lsn": self.lsn, "kind": self.kind.value, "payload": self.payload},
            separators=(",", ":"),
        )

    @property
    def crc(self) -> int:
        """CRC32 of the canonical body — the per-record checksum that
        frames every durable and every shipped copy of this record."""
        return zlib.crc32(self.body_json().encode("utf-8")) & 0xFFFFFFFF

    def to_json(self) -> str:
        return json.dumps(
            {
                "lsn": self.lsn,
                "kind": self.kind.value,
                "payload": self.payload,
                "crc": self.crc,
            },
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(line: str) -> "LogRecord":
        data = json.loads(line)
        record = LogRecord(
            lsn=data["lsn"], kind=LogKind(data["kind"]), payload=data["payload"]
        )
        # Records written before the CRC framing carry no checksum;
        # they are accepted as-is.  A present checksum must match.
        stored = data.get("crc")
        if stored is not None and stored != record.crc:
            raise WALChecksumError(
                f"checksum mismatch on LSN {record.lsn}: stored {stored}, "
                f"computed {record.crc}"
            )
        return record


class LsnRetentionRegistry:
    """Named low-watermarks gating WAL segment reclamation.

    Every consumer that may still need old records registers its
    applied/acknowledged position here: the replication ship pump (one
    entry per link), the CDC maintainer's feed watermark, anything
    else that replays history.  :meth:`WriteAheadLog.reclaim` never
    retires a segment past ``min(positions)`` — so a lagging replica or
    a backed-up outbox holds segments live (or archived but readable)
    instead of being silently cut off.
    """

    def __init__(self) -> None:
        self._positions: dict[str, int] = {}
        self._mutex = threading.Lock()

    def update(self, name: str, lsn: int) -> None:
        """Record that consumer ``name`` has durably consumed ``lsn``
        (everything at or below it may be reclaimed from under it)."""
        with self._mutex:
            self._positions[name] = int(lsn)

    def release(self, name: str) -> None:
        """Forget a consumer (it bootstrapped from a snapshot, or was
        decommissioned); it no longer pins retention."""
        with self._mutex:
            self._positions.pop(name, None)

    def floor(self) -> int | None:
        """The reclamation bound: the minimum registered position, or
        ``None`` when no consumer is registered (nothing pins)."""
        with self._mutex:
            if not self._positions:
                return None
            return min(self._positions.values())

    def positions(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._positions)


@dataclass
class _Segment:
    """One on-disk log segment (live or archived)."""

    seq: int
    path: str
    first_lsn: int = 0  # 0 while the segment is still empty
    last_lsn: int = 0
    size: int = 0  # complete (newline-terminated) bytes

    @property
    def name(self) -> str:
        return os.path.basename(self.path)


_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def _segment_name(seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def _segment_seq(name: str) -> int | None:
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])
    except ValueError:
        return None


class WriteAheadLog:
    """An append-only log, in memory and optionally on disk.

    With a ``path`` (and no ``segment_bytes``), the log is a single
    JSON-lines file and every append is written and flushed immediately
    (force-at-append — simple, and sufficient for statement-level
    durability in a single-threaded engine).

    With ``segment_bytes``, ``path`` names a *directory* of rotating
    segments: the active segment rotates once it crosses the byte
    budget (rotation is deferred to the next :meth:`reserve`, so it can
    never fail mid-statement), and :meth:`reclaim` retires fully
    checkpointed, fully consumed segments to ``archive_dir`` — keeping
    both the live directory and the in-memory record list bounded no
    matter how long the instance runs.  ``archive_max_bytes`` optionally
    bounds the archive too; records pruned past it are gone, and a
    consumer that still needs them must bootstrap from a snapshot.
    """

    def __init__(
        self,
        path: str | None = None,
        segment_bytes: int | None = None,
        archive_dir: str | None = None,
        archive_max_bytes: int | None = None,
    ) -> None:
        self.path = path
        self.segment_bytes = segment_bytes
        self.archive_dir = archive_dir
        self.archive_max_bytes = archive_max_bytes
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._file = None
        self.torn_tail: str | None = None
        self.checksum_tail: str | None = None
        self.checksum_failures = 0
        self.fenced_by_epoch: int | None = None
        self._complete_bytes: int | None = None
        # Resource model (DESIGN.md §15) ---------------------------------
        # Optional fault-site hook (repro.faults): fired at the
        # reserve/rotate probes as site "wal.enospc".
        self.fault_check: Callable[[str], Any] | None = None
        self.retention = LsnRetentionRegistry()
        self.last_checkpoint_lsn = 0
        # Records at or below truncated_lsn live only in the archive;
        # below pruned_lsn they are gone entirely.
        self.truncated_lsn = 0
        self.pruned_lsn = 0
        self.segments_rotated = 0
        self.segments_reclaimed = 0
        self.segments_pruned = 0
        self.archive_reads = 0
        self.repairs = 0
        self.last_repair: dict[str, Any] | None = None
        self._segments: list[_Segment] = []  # live; last is the active one
        self._archived: list[_Segment] = []
        self._damage: dict[str, Any] | None = None  # set by _load_dir
        if segment_bytes is not None:
            if path is None:
                raise EngineError("a segmented WAL needs a directory path")
            if segment_bytes < 1:
                raise EngineError("segment_bytes must be positive")
            os.makedirs(path, exist_ok=True)
            if self.archive_dir is None:
                self.archive_dir = os.path.join(path, "archive")
            os.makedirs(self.archive_dir, exist_ok=True)
            seqs = [
                seq
                for name in os.listdir(path)
                if (seq := _segment_seq(name)) is not None
            ]
            self._open_segment(max(seqs, default=0) + 1)
        elif path is not None:
            self._file = open(path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------------

    def append(self, kind: LogKind, payload: dict[str, Any]) -> LogRecord:
        if self.fenced_by_epoch is not None:
            raise WALFencedError(
                f"log is fenced: epoch {self.fenced_by_epoch} was promoted "
                f"elsewhere; this instance must not accept appends"
            )
        record = LogRecord(lsn=self._next_lsn, kind=kind, payload=payload)
        self._next_lsn += 1
        self._records.append(record)
        if self._file is not None:
            line = record.to_json() + "\n"
            self._file.write(line)
            self._file.flush()
            os.fsync(self._file.fileno())
            if self._segments:
                active = self._segments[-1]
                if active.first_lsn == 0:
                    active.first_lsn = record.lsn
                active.last_lsn = record.lsn
                active.size += len(line.encode("utf-8"))
        return record

    def reserve(self) -> None:
        """Pre-statement space probe: fail *before* anything mutates.

        The engine calls this at the top of every DML statement
        (:meth:`Database._check_writable`).  It fires the
        ``wal.enospc`` fault site and performs any rotation the last
        append made due — both places a real system hits ENOSPC — so a
        full disk surfaces here as a clean, typed
        :class:`~repro.errors.DiskFullError` refusal while the heap,
        indexes, and log are still untouched.  The next successful
        probe is the auto-recovery signal.
        """
        if self.fault_check is not None and self.fault_check("wal.enospc"):
            raise DiskFullError(
                "no space left on device (WAL append reserve)",
                site="wal.enospc",
            )
        if self._rotation_due():
            self._rotate()

    def _rotation_due(self) -> bool:
        return (
            self.segment_bytes is not None
            and bool(self._segments)
            and self._segments[-1].first_lsn != 0
            and self._segments[-1].size >= self.segment_bytes
        )

    def _rotate(self) -> None:
        """Retire the active segment and open the next one.

        Deferred to :meth:`reserve` on purpose: creating a file can hit
        a full disk, and failing *between* a heap mutation and its WAL
        append would leave the two disagreeing.  Failing here refuses
        the statement before it starts; the rotation stays due and is
        retried by the next probe.
        """
        if self.fault_check is not None and self.fault_check("wal.enospc"):
            raise DiskFullError(
                "no space left on device (WAL segment rotate)",
                site="wal.enospc",
            )
        seq = self._segments[-1].seq + 1
        seg_path = os.path.join(self.path, _segment_name(seq))
        try:
            handle = open(seg_path, "a", encoding="utf-8")
        except OSError as exc:
            if exc.errno == _errno.ENOSPC:
                raise DiskFullError(
                    "no space left on device (WAL segment rotate)",
                    site="wal.enospc",
                ) from exc
            raise
        self._file.close()
        self._file = handle
        self._segments.append(_Segment(seq=seq, path=seg_path))
        self.segments_rotated += 1

    def _open_segment(self, seq: int) -> _Segment:
        seg_path = os.path.join(self.path, _segment_name(seq))
        self._file = open(seg_path, "a", encoding="utf-8")
        segment = _Segment(seq=seq, path=seg_path)
        self._segments.append(segment)
        return segment

    def checkpoint(self) -> LogRecord:
        """Append a checkpoint marker (replay may start after the last
        one when the caller also persists a data snapshot)."""
        record = self.append(LogKind.CHECKPOINT, {})
        self.last_checkpoint_lsn = record.lsn
        return record

    def reclaim(self) -> int:
        """Move fully-covered segments to the archive; prune memory.

        A segment is reclaimable when every record in it is at or below
        the *retention floor*: the last checkpoint LSN (a snapshot
        exists that already covers it) AND every consumer position in
        :attr:`retention` (no replica or CDC drain still needs it
        live).  Reclaimed segments stay readable through
        :meth:`records` from the archive until ``archive_max_bytes``
        prunes them.  Returns the number of segments reclaimed by this
        call; a no-op (0) on single-file and in-memory logs.
        """
        if self.segment_bytes is None or not self._segments:
            return 0
        floor = self.last_checkpoint_lsn
        consumer = self.retention.floor()
        if consumer is not None:
            floor = min(floor, consumer)
        moved = 0
        while len(self._segments) > 1:
            segment = self._segments[0]
            if segment.first_lsn == 0 or segment.last_lsn > floor:
                break
            dest = os.path.join(self.archive_dir, segment.name)
            os.replace(segment.path, dest)
            segment.path = dest
            self._archived.append(segment)
            self._segments.pop(0)
            self.truncated_lsn = segment.last_lsn
            self.segments_reclaimed += 1
            moved += 1
        if moved:
            self._records = [r for r in self._records if r.lsn > self.truncated_lsn]
            self._prune_archive()
        return moved

    def _prune_archive(self) -> None:
        if self.archive_max_bytes is None:
            return
        while (
            len(self._archived) > 1
            and sum(seg.size for seg in self._archived) > self.archive_max_bytes
        ):
            oldest = self._archived.pop(0)
            os.remove(oldest.path)
            self.pruned_lsn = oldest.last_lsn
            self.segments_pruned += 1

    def fence(self, epoch: int) -> None:
        """Refuse all further appends: a newer epoch has been promoted.

        The replication coordinator fences a deposed primary's log so a
        zombie instance cannot keep acknowledging writes that no
        replica will ever accept (stale-epoch ships are additionally
        rejected on the receiving side)."""
        self.fenced_by_epoch = epoch

    def advance_to(self, lsn: int) -> None:
        """Set the next LSN to ``lsn + 1`` (replica bootstrap).

        A replica restored from a snapshot joins the primary's LSN
        space mid-stream; its local log must hand out the same LSNs the
        primary's log does for the records it applies.  Only valid on a
        log that has not outgrown ``lsn`` already."""
        if lsn + 1 < self._next_lsn:
            raise EngineError(
                f"cannot rewind log from LSN {self._next_lsn - 1} to {lsn}"
            )
        self._next_lsn = lsn + 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- reading -------------------------------------------------------------

    def records(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Complete records in LSN order.

        A torn final line detected by :meth:`load` is never yielded —
        by write-ahead semantics the interrupted statement simply never
        happened; the raw fragment stays available in ``torn_tail`` and
        :meth:`repair` truncates it off the file.

        On a segmented log, records already reclaimed from memory are
        read back from the archived segment files (CRC-verified),
        transparently: a lagging replica's retransmit and a from-scratch
        replay both just iterate.  Asking for records the archive has
        *pruned* raises :class:`~repro.errors.EngineError` — the caller
        must bootstrap from a snapshot instead.
        """
        if after_lsn < self.truncated_lsn:
            if after_lsn < self.pruned_lsn:
                raise EngineError(
                    f"records after LSN {after_lsn} were pruned from the "
                    f"archive (pruned through {self.pruned_lsn}); bootstrap "
                    f"from a snapshot instead"
                )
            yield from self._archived_records(after_lsn)
        for record in self._records:
            if record.lsn > after_lsn:
                yield record

    def _archived_records(self, after_lsn: int) -> Iterator[LogRecord]:
        for segment in self._archived:
            if segment.last_lsn <= after_lsn:
                continue
            self.archive_reads += 1
            with open(segment.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = LogRecord.from_json(line)  # CRC-verified
                    if after_lsn < record.lsn <= self.truncated_lsn:
                        yield record

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def has_torn_tail(self) -> bool:
        """Whether :meth:`load` found an incomplete final record."""
        return self.torn_tail is not None

    @property
    def needs_repair(self) -> bool:
        """Whether :meth:`load` found damage :meth:`repair` can cut off
        — a torn final record or a checksum-mismatched record."""
        return self.torn_tail is not None or self.checksum_tail is not None

    def resource_stats(self) -> dict[str, Any]:
        """On-disk and in-memory footprint, for gates and benchmarks."""
        if self.segment_bytes is not None:
            live_bytes = sum(seg.size for seg in self._segments)
        elif self.path is not None and os.path.exists(self.path):
            live_bytes = os.path.getsize(self.path)
        else:
            live_bytes = 0
        return {
            "segmented": self.segment_bytes is not None,
            "segment_bytes": self.segment_bytes,
            "live_segments": max(len(self._segments), 1) if self.path else 0,
            "live_bytes": live_bytes,
            "archived_segments": len(self._archived),
            "archived_bytes": sum(seg.size for seg in self._archived),
            "segments_rotated": self.segments_rotated,
            "segments_reclaimed": self.segments_reclaimed,
            "segments_pruned": self.segments_pruned,
            "archive_reads": self.archive_reads,
            "resident_records": len(self._records),
            "truncated_lsn": self.truncated_lsn,
            "pruned_lsn": self.pruned_lsn,
            "last_checkpoint_lsn": self.last_checkpoint_lsn,
            "retention": self.retention.positions(),
            "repairs": self.repairs,
            "last_repair": self.last_repair,
        }

    @staticmethod
    def load(path: str) -> "WriteAheadLog":
        """Read a log back (the crashed process's log).

        ``path`` is either a single log file or a segmented log
        directory.  A crash mid-append can leave a torn final line (the
        record was cut short, or its newline never made it to disk).
        That tail is tolerated: it is reported via ``torn_tail`` /
        ``has_torn_tail`` and skipped, because an append that never
        completed is a statement that never happened.

        A record that parses but fails its CRC32 check is bit rot:
        reading stops at the first such record (everything from it on
        is untrusted — counted in ``checksum_failures`` and reported
        via ``checksum_tail``), and :meth:`repair` truncates there —
        on a segmented log that also drops every later live segment.
        Structural damage anywhere *before* the final record — an
        unparseable line followed by further complete records — is
        corruption beyond repair and raises
        :class:`~repro.errors.WALCorruptionError`.
        """
        if os.path.isdir(path):
            return WriteAheadLog._load_dir(path)
        log = WriteAheadLog()
        log.path = path
        complete_bytes = 0
        with open(path, "rb") as handle:
            raw = handle.read()
        for line_bytes in raw.split(b"\n"):
            offset_after = complete_bytes + len(line_bytes) + 1  # + newline
            line = line_bytes.decode("utf-8", errors="replace").strip()
            if not line:
                if offset_after <= len(raw):
                    complete_bytes = offset_after
                continue
            try:
                record = LogRecord.from_json(line)
            except WALChecksumError:
                log.checksum_failures += 1
                if offset_after > len(raw):
                    # Final line, no terminating newline: the bytes were
                    # still in flight — an ordinary torn tail.
                    log.torn_tail = line
                    break
                # A durable record whose stored CRC disagrees with its
                # body: trust nothing from here on.
                log.checksum_tail = line
                break
            except (ValueError, KeyError) as exc:
                if offset_after > len(raw):
                    # Final line, no terminating newline: a torn tail.
                    log.torn_tail = line
                    break
                raise WALCorruptionError(
                    f"unparseable WAL record at byte {complete_bytes} "
                    f"of {path!r} (not the final line): {line[:80]!r}"
                ) from exc
            if offset_after > len(raw):
                # Parsed, but the newline never hit the disk: the
                # append was still in flight.  Treat it as torn — the
                # fsync covering it cannot have completed.
                log.torn_tail = line
                break
            if record.kind is LogKind.CHECKPOINT:
                log.last_checkpoint_lsn = record.lsn
            log._records.append(record)
            log._next_lsn = record.lsn + 1
            complete_bytes = offset_after
        log._complete_bytes = complete_bytes
        return log

    @staticmethod
    def _load_dir(path: str) -> "WriteAheadLog":
        """Read a segmented log directory back: archive first (immutable
        — any damage there is corruption beyond repair), then live
        segments in sequence order.  Torn tails are only legal at the
        very end of the very last live segment; damage earlier in a
        segment marks a repair point and drops every later segment."""
        log = WriteAheadLog()
        log.path = path
        archive_dir = os.path.join(path, "archive")
        log.archive_dir = archive_dir

        def _listing(directory: str) -> list[tuple[int, str]]:
            if not os.path.isdir(directory):
                return []
            entries = [
                (seq, os.path.join(directory, name))
                for name in os.listdir(directory)
                if (seq := _segment_seq(name)) is not None
            ]
            return sorted(entries)

        for seq, seg_path in _listing(archive_dir):
            segment = _Segment(seq=seq, path=seg_path)
            with open(seg_path, "rb") as handle:
                raw = handle.read()
            offset = 0
            for line_bytes in raw.split(b"\n"):
                offset += len(line_bytes) + 1
                line = line_bytes.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                if offset > len(raw):
                    raise WALCorruptionError(
                        f"archived segment {seg_path!r} ends mid-record; "
                        f"the archive is immutable, so this is corruption"
                    )
                record = LogRecord.from_json(line)  # CRC must hold
                if segment.first_lsn == 0:
                    segment.first_lsn = record.lsn
                segment.last_lsn = record.lsn
                segment.size = offset
                if record.kind is LogKind.CHECKPOINT:
                    log.last_checkpoint_lsn = record.lsn
                log._next_lsn = record.lsn + 1
            log._archived.append(segment)
            log.truncated_lsn = max(log.truncated_lsn, segment.last_lsn)

        live = _listing(path)
        damaged = False
        for position, (seq, seg_path) in enumerate(live):
            final_segment = position == len(live) - 1
            if damaged:
                # Everything after the damage point is untrusted; list
                # it for repair() to drop.
                log._damage["dropped"].append(seg_path)
                continue
            segment = _Segment(seq=seq, path=seg_path)
            with open(seg_path, "rb") as handle:
                raw = handle.read()
            complete_bytes = 0
            for line_bytes in raw.split(b"\n"):
                offset_after = complete_bytes + len(line_bytes) + 1
                line = line_bytes.decode("utf-8", errors="replace").strip()
                if not line:
                    if offset_after <= len(raw):
                        complete_bytes = offset_after
                    continue
                try:
                    record = LogRecord.from_json(line)
                except WALChecksumError:
                    log.checksum_failures += 1
                    if final_segment and offset_after > len(raw):
                        log.torn_tail = line
                    else:
                        log.checksum_tail = line
                    damaged = True
                    break
                except (ValueError, KeyError) as exc:
                    if offset_after > len(raw):
                        # Ends mid-record: a torn tail if this is the
                        # active segment, a repair point otherwise.
                        if final_segment:
                            log.torn_tail = line
                        else:
                            log.checksum_tail = line
                        damaged = True
                        break
                    raise WALCorruptionError(
                        f"unparseable WAL record at byte {complete_bytes} "
                        f"of segment {seg_path!r} (not the final line): "
                        f"{line[:80]!r}"
                    ) from exc
                if offset_after > len(raw):
                    # Parsed, but the newline never hit the disk.
                    if final_segment:
                        log.torn_tail = line
                    else:
                        log.checksum_tail = line
                    damaged = True
                    break
                if segment.first_lsn == 0:
                    segment.first_lsn = record.lsn
                segment.last_lsn = record.lsn
                if record.kind is LogKind.CHECKPOINT:
                    log.last_checkpoint_lsn = record.lsn
                log._records.append(record)
                log._next_lsn = record.lsn + 1
                complete_bytes = offset_after
            segment.size = complete_bytes
            log._segments.append(segment)
            if damaged:
                log._damage = {
                    "segment_seq": seq,
                    "segment_path": seg_path,
                    "offset": complete_bytes,
                    "dropped": [],
                }
        return log

    def repair(self, path: str | None = None) -> int:
        """Truncate the on-disk log to the last trustworthy record.

        Cuts off a torn final record and, when :meth:`load` found one,
        everything from the first checksum-mismatched record onward —
        on a segmented log, including every live segment after the
        damaged one.  Returns the number of bytes removed; a no-op
        (returning 0) when the tail is intact.  Only meaningful on a
        log produced by :meth:`load`.

        What was cut is *reported*, never silent: ``last_repair``
        records the segment, byte offset, bytes removed, dropped
        segments, and reason, and ``repairs`` counts invocations — the
        serving gate surfaces both next to ``wal_checksum_failures``.
        """
        if self._damage is not None:
            damage = self._damage
            reason = "checksum" if self.checksum_tail is not None else "torn"
            size = os.path.getsize(damage["segment_path"])
            removed = size - damage["offset"]
            if removed > 0:
                os.truncate(damage["segment_path"], damage["offset"])
            dropped_names = []
            for seg_path in damage["dropped"]:
                removed += os.path.getsize(seg_path)
                os.remove(seg_path)
                dropped_names.append(os.path.basename(seg_path))
            self._segments = [
                seg for seg in self._segments if seg.path not in damage["dropped"]
            ]
            for segment in self._segments:
                if segment.seq == damage["segment_seq"]:
                    segment.size = damage["offset"]
            self.last_repair = {
                "segment": os.path.basename(damage["segment_path"]),
                "offset": damage["offset"],
                "bytes_removed": removed,
                "dropped_segments": dropped_names,
                "reason": reason,
            }
            self.repairs += 1
            self.torn_tail = None
            self.checksum_tail = None
            self._damage = None
            return removed
        target = path or self.path
        if target is None:
            raise EngineError("repair() needs the log's file path")
        if self._complete_bytes is None:
            raise EngineError("repair() requires a log read via load()")
        reason = "checksum" if self.checksum_tail is not None else "torn"
        size = os.path.getsize(target)
        removed = size - self._complete_bytes
        if removed > 0:
            os.truncate(target, self._complete_bytes)
            self.last_repair = {
                "segment": os.path.basename(target),
                "offset": self._complete_bytes,
                "bytes_removed": removed,
                "dropped_segments": [],
                "reason": reason,
            }
            self.repairs += 1
        self.torn_tail = None
        self.checksum_tail = None
        return removed


_TYPE_BY_NAME = {kind.value: kind for kind in TypeKind}


def _column_to_payload(column: Column) -> list:
    return [column.name, column.dtype.kind.value, column.nullable, column.dtype.width]


def _column_from_payload(entry: Sequence) -> Column:
    name, type_name, nullable, width = entry
    return Column(name, DataType(_TYPE_BY_NAME[type_name], width=width), nullable)


def log_create_relation(log: WriteAheadLog, name: str, columns: Sequence[Column]) -> None:
    log.append(
        LogKind.CREATE_RELATION,
        {"name": name, "columns": [_column_to_payload(c) for c in columns]},
    )


def log_create_index(
    log: WriteAheadLog,
    name: str,
    relation: str,
    key_columns: Sequence[str],
    ordered: bool,
) -> None:
    log.append(
        LogKind.CREATE_INDEX,
        {
            "name": name,
            "relation": relation,
            "key_columns": list(key_columns),
            "ordered": ordered,
        },
    )


def replay_record(database, record: LogRecord) -> None:
    """Re-execute one log record against ``database``.

    Shared by :func:`recover` and snapshot-based recovery
    (:func:`repro.engine.snapshot.recover_from_snapshot`), so the two
    paths cannot drift apart.
    """
    payload = record.payload
    if record.kind is LogKind.CREATE_RELATION:
        database.create_relation(
            payload["name"],
            [_column_from_payload(entry) for entry in payload["columns"]],
        )
    elif record.kind is LogKind.CREATE_INDEX:
        database.create_index(
            payload["name"],
            payload["relation"],
            payload["key_columns"],
            ordered=payload["ordered"],
        )
    elif record.kind is LogKind.INSERT:
        # Idempotency keys ride along so replica/recovered WALs carry
        # them too — the net tier's dedup table is rebuilt by scanning
        # whichever log survives a failover.
        database.insert(
            payload["relation"], payload["values"], idem=payload.get("idem")
        )
    elif record.kind is LogKind.DELETE:
        database.delete(
            payload["relation"],
            RowId(payload["page_no"], payload["slot_no"]),
            idem=payload.get("idem"),
        )
    elif record.kind is LogKind.UPDATE:
        database.update(
            payload["relation"],
            RowId(payload["page_no"], payload["slot_no"]),
            idem=payload.get("idem"),
            **payload["changes"],
        )
    elif record.kind is LogKind.CHECKPOINT:
        return
    else:  # pragma: no cover - enum is closed
        raise EngineError(f"unknown log record kind {record.kind!r}")


def recover(log: WriteAheadLog, database_factory=None):
    """Replay ``log`` into a fresh database and return it.

    ``database_factory`` builds the empty instance (defaults to a
    plain :class:`~repro.engine.database.Database`); replay re-executes
    every logged statement in order, so the recovered heap, indexes,
    and row addressing match the pre-crash state exactly.
    """
    from repro.engine.database import Database

    database = database_factory() if database_factory is not None else Database()
    for record in log.records():
        replay_record(database, record)
    return database
