"""Write-ahead logging and crash recovery.

The engine's durability story, kept deliberately simple but honest:

- every DDL statement (CREATE TABLE / CREATE INDEX) and every DML
  statement (INSERT / DELETE / UPDATE) appends a :class:`LogRecord`
  the moment it succeeds — the log is the database of record, and the
  in-memory heap/indexes are a cache of it (statement-level
  commit-at-log semantics: a statement interrupted before its record
  is durable simply never happened);
- the log lives in memory and, optionally, in a JSON-lines file so it
  survives a process crash;
- every serialized record carries a CRC32 over its canonical body
  (``lsn``/``kind``/``payload``), verified whenever the record is read
  back — on crash-recovery replay and again on the replication ship
  path — so bit rot is detected loudly instead of being replayed into
  a fresh instance;
- :func:`recover` replays a log into a fresh :class:`Database`.  Replay
  is deterministic — row ids are allocated in the same order as the
  original execution — so DELETE/UPDATE records can address rows by
  their original (page, slot) ids.

PMVs deliberately do **not** participate in recovery: a PMV is a cache
of re-derivable results, so after a crash it simply restarts empty and
refills from query execution — one more consequence of the paper's
"PMV is any subset of its containing MV" definition (an empty subset is
a correct subset).
"""

from __future__ import annotations

import enum
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.engine.datatypes import DataType, TypeKind
from repro.engine.row import RowId
from repro.engine.schema import Column
from repro.errors import (
    EngineError,
    WALChecksumError,
    WALCorruptionError,
    WALFencedError,
)

__all__ = ["LogKind", "LogRecord", "WriteAheadLog", "recover", "replay_record"]


class LogKind(enum.Enum):
    CREATE_RELATION = "create_relation"
    CREATE_INDEX = "create_index"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry.

    ``payload`` is a JSON-safe dict whose shape depends on ``kind``:

    - CREATE_RELATION: ``{"name", "columns": [[name, type, nullable]]}``
    - CREATE_INDEX: ``{"name", "relation", "key_columns", "ordered"}``
    - INSERT: ``{"relation", "values"}``
    - DELETE: ``{"relation", "page_no", "slot_no"}``
    - UPDATE: ``{"relation", "page_no", "slot_no", "changes"}``
    - CHECKPOINT: ``{}``
    """

    lsn: int
    kind: LogKind
    payload: dict[str, Any]

    def body_json(self) -> str:
        """The canonical serialized body the CRC covers."""
        return json.dumps(
            {"lsn": self.lsn, "kind": self.kind.value, "payload": self.payload},
            separators=(",", ":"),
        )

    @property
    def crc(self) -> int:
        """CRC32 of the canonical body — the per-record checksum that
        frames every durable and every shipped copy of this record."""
        return zlib.crc32(self.body_json().encode("utf-8")) & 0xFFFFFFFF

    def to_json(self) -> str:
        return json.dumps(
            {
                "lsn": self.lsn,
                "kind": self.kind.value,
                "payload": self.payload,
                "crc": self.crc,
            },
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(line: str) -> "LogRecord":
        data = json.loads(line)
        record = LogRecord(
            lsn=data["lsn"], kind=LogKind(data["kind"]), payload=data["payload"]
        )
        # Records written before the CRC framing carry no checksum;
        # they are accepted as-is.  A present checksum must match.
        stored = data.get("crc")
        if stored is not None and stored != record.crc:
            raise WALChecksumError(
                f"checksum mismatch on LSN {record.lsn}: stored {stored}, "
                f"computed {record.crc}"
            )
        return record


class WriteAheadLog:
    """An append-only log, in memory and optionally on disk.

    With a ``path``, every append is written and flushed immediately
    (force-at-append — simple, and sufficient for statement-level
    durability in a single-threaded engine).
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._file = None
        self.torn_tail: str | None = None
        self.checksum_tail: str | None = None
        self.checksum_failures = 0
        self.fenced_by_epoch: int | None = None
        self._complete_bytes: int | None = None
        if path is not None:
            self._file = open(path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------------

    def append(self, kind: LogKind, payload: dict[str, Any]) -> LogRecord:
        if self.fenced_by_epoch is not None:
            raise WALFencedError(
                f"log is fenced: epoch {self.fenced_by_epoch} was promoted "
                f"elsewhere; this instance must not accept appends"
            )
        record = LogRecord(lsn=self._next_lsn, kind=kind, payload=payload)
        self._next_lsn += 1
        self._records.append(record)
        if self._file is not None:
            self._file.write(record.to_json() + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        return record

    def checkpoint(self) -> LogRecord:
        """Append a checkpoint marker (replay may start after the last
        one when the caller also persists a data snapshot)."""
        return self.append(LogKind.CHECKPOINT, {})

    def fence(self, epoch: int) -> None:
        """Refuse all further appends: a newer epoch has been promoted.

        The replication coordinator fences a deposed primary's log so a
        zombie instance cannot keep acknowledging writes that no
        replica will ever accept (stale-epoch ships are additionally
        rejected on the receiving side)."""
        self.fenced_by_epoch = epoch

    def advance_to(self, lsn: int) -> None:
        """Set the next LSN to ``lsn + 1`` (replica bootstrap).

        A replica restored from a snapshot joins the primary's LSN
        space mid-stream; its local log must hand out the same LSNs the
        primary's log does for the records it applies.  Only valid on a
        log that has not outgrown ``lsn`` already."""
        if lsn + 1 < self._next_lsn:
            raise EngineError(
                f"cannot rewind log from LSN {self._next_lsn - 1} to {lsn}"
            )
        self._next_lsn = lsn + 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- reading -------------------------------------------------------------

    def records(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Complete records in LSN order.

        A torn final line detected by :meth:`load` is never yielded —
        by write-ahead semantics the interrupted statement simply never
        happened; the raw fragment stays available in ``torn_tail`` and
        :meth:`repair` truncates it off the file.
        """
        for record in self._records:
            if record.lsn > after_lsn:
                yield record

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def has_torn_tail(self) -> bool:
        """Whether :meth:`load` found an incomplete final record."""
        return self.torn_tail is not None

    @property
    def needs_repair(self) -> bool:
        """Whether :meth:`load` found damage :meth:`repair` can cut off
        — a torn final record or a checksum-mismatched record."""
        return self.torn_tail is not None or self.checksum_tail is not None

    @staticmethod
    def load(path: str) -> "WriteAheadLog":
        """Read a log file back (the crashed process's log).

        A crash mid-append can leave a torn final line (the record was
        cut short, or its newline never made it to disk).  That tail is
        tolerated: it is reported via ``torn_tail`` / ``has_torn_tail``
        and skipped, because an append that never completed is a
        statement that never happened.

        A record that parses but fails its CRC32 check is bit rot:
        reading stops at the first such record (everything from it on
        is untrusted — counted in ``checksum_failures`` and reported
        via ``checksum_tail``), and :meth:`repair` truncates the file
        there.  Structural damage anywhere *before* the final record —
        an unparseable line followed by further complete records — is
        corruption beyond repair and raises
        :class:`~repro.errors.WALCorruptionError`.
        """
        log = WriteAheadLog()
        log.path = path
        complete_bytes = 0
        with open(path, "rb") as handle:
            raw = handle.read()
        for line_bytes in raw.split(b"\n"):
            offset_after = complete_bytes + len(line_bytes) + 1  # + newline
            line = line_bytes.decode("utf-8", errors="replace").strip()
            if not line:
                if offset_after <= len(raw):
                    complete_bytes = offset_after
                continue
            try:
                record = LogRecord.from_json(line)
            except WALChecksumError:
                log.checksum_failures += 1
                if offset_after > len(raw):
                    # Final line, no terminating newline: the bytes were
                    # still in flight — an ordinary torn tail.
                    log.torn_tail = line
                    break
                # A durable record whose stored CRC disagrees with its
                # body: trust nothing from here on.
                log.checksum_tail = line
                break
            except (ValueError, KeyError) as exc:
                if offset_after > len(raw):
                    # Final line, no terminating newline: a torn tail.
                    log.torn_tail = line
                    break
                raise WALCorruptionError(
                    f"unparseable WAL record at byte {complete_bytes} "
                    f"of {path!r} (not the final line): {line[:80]!r}"
                ) from exc
            if offset_after > len(raw):
                # Parsed, but the newline never hit the disk: the
                # append was still in flight.  Treat it as torn — the
                # fsync covering it cannot have completed.
                log.torn_tail = line
                break
            log._records.append(record)
            log._next_lsn = record.lsn + 1
            complete_bytes = offset_after
        log._complete_bytes = complete_bytes
        return log

    def repair(self, path: str | None = None) -> int:
        """Truncate the on-disk log to the last trustworthy record.

        Cuts off a torn final record and, when :meth:`load` found one,
        everything from the first checksum-mismatched record onward.
        Returns the number of bytes removed.  A no-op (returning 0)
        when the tail is intact.  Only meaningful on a log produced by
        :meth:`load`.
        """
        target = path or self.path
        if target is None:
            raise EngineError("repair() needs the log's file path")
        if self._complete_bytes is None:
            raise EngineError("repair() requires a log read via load()")
        size = os.path.getsize(target)
        removed = size - self._complete_bytes
        if removed > 0:
            os.truncate(target, self._complete_bytes)
        self.torn_tail = None
        self.checksum_tail = None
        return removed


_TYPE_BY_NAME = {kind.value: kind for kind in TypeKind}


def _column_to_payload(column: Column) -> list:
    return [column.name, column.dtype.kind.value, column.nullable, column.dtype.width]


def _column_from_payload(entry: Sequence) -> Column:
    name, type_name, nullable, width = entry
    return Column(name, DataType(_TYPE_BY_NAME[type_name], width=width), nullable)


def log_create_relation(log: WriteAheadLog, name: str, columns: Sequence[Column]) -> None:
    log.append(
        LogKind.CREATE_RELATION,
        {"name": name, "columns": [_column_to_payload(c) for c in columns]},
    )


def log_create_index(
    log: WriteAheadLog,
    name: str,
    relation: str,
    key_columns: Sequence[str],
    ordered: bool,
) -> None:
    log.append(
        LogKind.CREATE_INDEX,
        {
            "name": name,
            "relation": relation,
            "key_columns": list(key_columns),
            "ordered": ordered,
        },
    )


def replay_record(database, record: LogRecord) -> None:
    """Re-execute one log record against ``database``.

    Shared by :func:`recover` and snapshot-based recovery
    (:func:`repro.engine.snapshot.recover_from_snapshot`), so the two
    paths cannot drift apart.
    """
    payload = record.payload
    if record.kind is LogKind.CREATE_RELATION:
        database.create_relation(
            payload["name"],
            [_column_from_payload(entry) for entry in payload["columns"]],
        )
    elif record.kind is LogKind.CREATE_INDEX:
        database.create_index(
            payload["name"],
            payload["relation"],
            payload["key_columns"],
            ordered=payload["ordered"],
        )
    elif record.kind is LogKind.INSERT:
        # Idempotency keys ride along so replica/recovered WALs carry
        # them too — the net tier's dedup table is rebuilt by scanning
        # whichever log survives a failover.
        database.insert(
            payload["relation"], payload["values"], idem=payload.get("idem")
        )
    elif record.kind is LogKind.DELETE:
        database.delete(
            payload["relation"],
            RowId(payload["page_no"], payload["slot_no"]),
            idem=payload.get("idem"),
        )
    elif record.kind is LogKind.UPDATE:
        database.update(
            payload["relation"],
            RowId(payload["page_no"], payload["slot_no"]),
            idem=payload.get("idem"),
            **payload["changes"],
        )
    elif record.kind is LogKind.CHECKPOINT:
        return
    else:  # pragma: no cover - enum is closed
        raise EngineError(f"unknown log record kind {record.kind!r}")


def recover(log: WriteAheadLog, database_factory=None):
    """Replay ``log`` into a fresh database and return it.

    ``database_factory`` builds the empty instance (defaults to a
    plain :class:`~repro.engine.database.Database`); replay re-executes
    every logged statement in order, so the recovered heap, indexes,
    and row addressing match the pre-crash state exactly.
    """
    from repro.engine.database import Database

    database = database_factory() if database_factory is not None else Database()
    for record in log.records():
        replay_record(database, record)
    return database
