"""Secondary indexes: hash (equality) and ordered (range).

Both index kinds map a key — one or more column values — to the
:class:`RowId`\\ s of matching heap records.  The index structures
themselves live in memory (as the upper levels of real B-trees
effectively do), but following a probe the executor still fetches the
pointed-to records through the buffer pool, so query plans that probe
an index many times generate the page traffic the paper describes for
its not-fully-pipelined plans.

:class:`OrderedIndex` keeps keys in a sorted list and answers range
probes with :mod:`bisect`, i.e. it behaves like a B-tree's leaf level.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from repro.engine.heap import HeapRelation
from repro.engine.row import Row, RowId
from repro.errors import IndexError_

__all__ = ["HashIndex", "OrderedIndex", "build_index"]


class _BaseIndex:
    """Shared bookkeeping for both index kinds."""

    def __init__(self, name: str, relation: HeapRelation, key_columns: Sequence[str]) -> None:
        if not key_columns:
            raise IndexError_("an index needs at least one key column")
        for column in key_columns:
            if not relation.schema.has_column(column):
                raise IndexError_(
                    f"index {name!r}: relation {relation.name!r} has no column {column!r}"
                )
        self.name = name
        self.relation = relation
        self.key_columns = tuple(key_columns)
        self.probes = 0
        self._entry_count = 0

    def key_of(self, row: Row) -> Any:
        """Extract this index's key from a row.

        Single-column keys are stored unwrapped so that range probes
        compare raw values; multi-column keys are tuples.
        """
        if len(self.key_columns) == 1:
            return row[self.key_columns[0]]
        return tuple(row[c] for c in self.key_columns)

    @property
    def entry_count(self) -> int:
        return self._entry_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.name!r}, on={self.key_columns}, "
            f"entries={self._entry_count})"
        )


class HashIndex(_BaseIndex):
    """Equality-only index: dict from key to row-id list."""

    def __init__(self, name: str, relation: HeapRelation, key_columns: Sequence[str]) -> None:
        super().__init__(name, relation, key_columns)
        self._buckets: dict[Any, list[RowId]] = {}

    def insert(self, row: Row, row_id: RowId) -> None:
        self._buckets.setdefault(self.key_of(row), []).append(row_id)
        self._entry_count += 1

    def delete(self, row: Row, row_id: RowId) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if not bucket or row_id not in bucket:
            raise IndexError_(f"{self.name}: ({key!r}, {row_id}) not indexed")
        bucket.remove(row_id)
        if not bucket:
            del self._buckets[key]
        self._entry_count -= 1

    def probe(self, key: Any) -> list[RowId]:
        """Row ids whose key equals ``key`` (possibly empty)."""
        self.probes += 1
        bucket = self._buckets.get(key)
        return bucket.copy() if bucket is not None else []

    def probe_many(self, keys: Sequence[Any]) -> list[RowId]:
        """Row ids matching any of ``keys``, in key order.

        Counts one probe per key, exactly like repeated :meth:`probe`
        calls, but builds a single flat result list.
        """
        self.probes += len(keys)
        buckets = self._buckets
        out: list[RowId] = []
        for key in keys:
            bucket = buckets.get(key)
            if bucket is not None:
                out.extend(bucket)
        return out

    def keys(self) -> Iterator[Any]:
        return iter(self._buckets)

    def supports_range(self) -> bool:
        return False


class OrderedIndex(_BaseIndex):
    """Sorted single-column index supporting equality and range probes."""

    def __init__(self, name: str, relation: HeapRelation, key_columns: Sequence[str]) -> None:
        if len(key_columns) != 1:
            raise IndexError_("OrderedIndex supports exactly one key column")
        super().__init__(name, relation, key_columns)
        self._keys: list[Any] = []
        self._postings: list[list[RowId]] = []

    def _locate(self, key: Any) -> int:
        """Position of ``key`` in the sorted key list, or -1."""
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return pos
        return -1

    def insert(self, row: Row, row_id: RowId) -> None:
        key = self.key_of(row)
        if key is None:
            raise IndexError_(f"{self.name}: NULL keys are not indexable")
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            self._postings[pos].append(row_id)
        else:
            self._keys.insert(pos, key)
            self._postings.insert(pos, [row_id])
        self._entry_count += 1

    def delete(self, row: Row, row_id: RowId) -> None:
        key = self.key_of(row)
        pos = self._locate(key)
        if pos < 0 or row_id not in self._postings[pos]:
            raise IndexError_(f"{self.name}: ({key!r}, {row_id}) not indexed")
        self._postings[pos].remove(row_id)
        if not self._postings[pos]:
            del self._keys[pos]
            del self._postings[pos]
        self._entry_count -= 1

    def probe(self, key: Any) -> list[RowId]:
        """Row ids whose key equals ``key``."""
        self.probes += 1
        pos = self._locate(key)
        return list(self._postings[pos]) if pos >= 0 else []

    def probe_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = False,
        high_inclusive: bool = False,
    ) -> list[RowId]:
        """Row ids with keys in the (low, high) interval.

        ``low``/``high`` may be the Infinity sentinels from
        :mod:`repro.engine.datatypes` for unbounded ends.
        """
        from repro.engine.datatypes import Infinity

        self.probes += 1
        if isinstance(low, Infinity):
            start = 0 if low.sign < 0 else len(self._keys)
        else:
            start = (
                bisect.bisect_left(self._keys, low)
                if low_inclusive
                else bisect.bisect_right(self._keys, low)
            )
        if isinstance(high, Infinity):
            stop = len(self._keys) if high.sign > 0 else 0
        else:
            stop = (
                bisect.bisect_right(self._keys, high)
                if high_inclusive
                else bisect.bisect_left(self._keys, high)
            )
        return [
            row_id for posting in self._postings[start:stop] for row_id in posting
        ]

    def min_key(self) -> Any:
        if not self._keys:
            raise IndexError_(f"{self.name}: empty index has no min key")
        return self._keys[0]

    def max_key(self) -> Any:
        if not self._keys:
            raise IndexError_(f"{self.name}: empty index has no max key")
        return self._keys[-1]

    def keys(self) -> Iterator[Any]:
        return iter(self._keys)

    def supports_range(self) -> bool:
        return True


def build_index(
    name: str,
    relation: HeapRelation,
    key_columns: Sequence[str],
    ordered: bool = False,
) -> HashIndex | OrderedIndex:
    """Create an index over ``relation`` and backfill existing rows."""
    index: HashIndex | OrderedIndex
    if ordered:
        index = OrderedIndex(name, relation, key_columns)
    else:
        index = HashIndex(name, relation, key_columns)
    for row_id, row in relation.scan():
        index.insert(row, row_id)
    return index
