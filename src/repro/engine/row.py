"""Row representation.

A :class:`Row` pairs an immutable value tuple with the schema that
names its fields.  Rows hash and compare by value (schema-insensitive),
which is exactly the semantics the paper's duplicate-suppression
structure ``DS`` needs: a tuple delivered from the PMV in Operation O2
must compare equal to the same tuple produced by full execution in
Operation O3, even though the two paths build it independently.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.engine.schema import Schema

__all__ = ["Row", "RowId"]


class RowId:
    """Physical address of a record: (page number, slot number)."""

    __slots__ = ("page_no", "slot_no")

    def __init__(self, page_no: int, slot_no: int) -> None:
        self.page_no = page_no
        self.slot_no = slot_no

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, RowId)
            and other.page_no == self.page_no
            and other.slot_no == self.slot_no
        )

    def __hash__(self) -> int:
        return hash((self.page_no, self.slot_no))

    def __lt__(self, other: "RowId") -> bool:
        return (self.page_no, self.slot_no) < (other.page_no, other.slot_no)

    def __repr__(self) -> str:
        return f"RowId({self.page_no}, {self.slot_no})"


class Row:
    """An immutable row of values described by a :class:`Schema`.

    Equality and hashing consider only the value tuple, not the schema,
    so rows from different plan shapes (PMV probe vs. full execution)
    compare equal when their values match.
    """

    __slots__ = ("values", "schema", "_hash")

    def __init__(self, values: Sequence[Any], schema: Schema) -> None:
        self.values = tuple(values)
        self.schema = schema
        self._hash = None

    # -- field access --------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.position(key)]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of column ``name``, or ``default`` if absent."""
        if self.schema.has_column(name):
            return self.values[self.schema.position(name)]
        return default

    def project(self, names: Sequence[str], schema: Schema | None = None) -> "Row":
        """A new row containing only ``names``, in order."""
        target = schema if schema is not None else self.schema.project(names)
        return Row([self[name] for name in names], target)

    def concat(self, other: "Row", schema: Schema) -> "Row":
        """Concatenate two rows under a precomputed joined schema."""
        return Row(self.values + other.values, schema)

    def replace(self, **updates: Any) -> "Row":
        """A copy of this row with named columns replaced."""
        values = list(self.values)
        for name, value in updates.items():
            values[self.schema.position(name)] = value
        return Row(values, self.schema)

    def as_dict(self) -> dict[str, Any]:
        """The row as a ``{bare_name: value}`` dict (for display/tests)."""
        return dict(zip(self.schema.names(), self.values))

    def byte_size(self) -> int:
        """Estimated storage footprint, via each column's type."""
        return sum(
            col.dtype.byte_size(value)
            for col, value in zip(self.schema.columns, self.values)
        )

    # -- dunder ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Row) and other.values == self.values

    def __hash__(self) -> int:
        # Cached: duplicate suppression hashes the same PMV-resident
        # rows on every query that touches their entry.
        h = self._hash
        if h is None:
            h = hash(self.values)
            self._hash = h
        return h

    def __repr__(self) -> str:
        pairs = ", ".join(f"{n}={v!r}" for n, v in self.as_dict().items())
        return f"Row({pairs})"
