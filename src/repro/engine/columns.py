"""Columnar batches for the vectorized execution path.

A :class:`ColumnBatch` is the unit of data flow on the columnar
pipeline: a shared :class:`~repro.engine.schema.Schema` plus the batch's
values in one of two layouts —

- *row-major*: a list of plain value tuples (the layout heap pages,
  index fetches, and join outputs produce naturally, and the layout the
  duplicate suppressor keys on);
- *column-major*: one Python list per column (the layout predicate
  evaluation and projection want).

Conversion between the two is a single C-speed ``zip`` and is performed
lazily, then cached, so each operator works in whichever layout is
natural and the transpose happens at most once per batch per direction.
Projection in column-major layout is zero-copy (it picks column list
references); filtering composes a *selection vector* (a list of
surviving row indices) per predicate column and gathers once at the
end.

No ``Row`` objects exist anywhere on this path — :meth:`ColumnBatch.rows`
materializes them only at the client boundary (the
``PMVQueryResult`` fields and row-at-a-time consumers).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.row import Row
from repro.engine.schema import Schema

__all__ = ["ColumnBatch", "coalesce_chunks"]

ValueTest = Callable[[Any], bool]


class ColumnBatch:
    """One batch of result data with a shared schema.

    Exactly one of ``tuples`` (row-major) or ``columns`` (column-major)
    must be supplied; the other layout is derived lazily via ``zip``
    and cached.  Batches are treated as immutable by the pipeline —
    operators build new batches rather than mutating inputs.
    """

    __slots__ = ("schema", "_tuples", "_columns")

    def __init__(
        self,
        schema: Schema,
        tuples: list[tuple] | None = None,
        columns: list[list] | None = None,
    ) -> None:
        if (tuples is None) == (columns is None):
            raise ValueError("supply exactly one of tuples= or columns=")
        self.schema = schema
        self._tuples = tuples
        self._columns = columns

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_tuples(cls, tuples: list[tuple], schema: Schema) -> "ColumnBatch":
        return cls(schema, tuples=tuples)

    @classmethod
    def from_columns(cls, columns: list[list], schema: Schema) -> "ColumnBatch":
        return cls(schema, columns=columns)

    @classmethod
    def from_rows(cls, rows: Sequence[Row], schema: Schema) -> "ColumnBatch":
        """Wrap a row-pipeline batch (the compatibility boundary for
        operators that only implement the row path)."""
        return cls(schema, tuples=[row.values for row in rows])

    # -- layout access ----------------------------------------------------------

    def tuples(self) -> list[tuple]:
        """Row-major layout (transposing and caching if needed)."""
        tuples = self._tuples
        if tuples is None:
            tuples = list(zip(*self._columns)) if self._columns[0] else []
            self._tuples = tuples
        return tuples

    def columns(self) -> list[list]:
        """Column-major layout (transposing and caching if needed)."""
        columns = self._columns
        if columns is None:
            if self._tuples:
                columns = [list(col) for col in zip(*self._tuples)]
            else:
                columns = [[] for _ in self.schema.columns]
            self._columns = columns
        return columns

    def column(self, position: int) -> Sequence[Any]:
        """One column's value vector."""
        return self.columns()[position]

    # -- vectorized operations --------------------------------------------------

    def filter(self, tests: Sequence[tuple[int, ValueTest]]) -> "ColumnBatch":
        """Apply conjunctive per-column value tests.

        In column-major layout each test narrows a selection vector of
        surviving row indices over its own column, and survivors are
        gathered once; in row-major layout each test filters the tuple
        list directly (one C-speed list comprehension per test).
        """
        if not tests:
            return self
        if self._columns is not None and self._tuples is None:
            columns = self._columns
            selection: Iterable[int] = range(len(columns[0]) if columns else 0)
            for position, test in tests:
                column = columns[position]
                selection = [i for i in selection if test(column[i])]
                if not selection:
                    return ColumnBatch(self.schema, tuples=[])
            return self.take(list(selection))
        tuples = self.tuples()
        for position, test in tests:
            tuples = [t for t in tuples if test(t[position])]
            if not tuples:
                break
        return ColumnBatch(self.schema, tuples=tuples)

    def filter_equal_columns(self, left: int, right: int) -> "ColumnBatch":
        """Keep rows where two columns are equal (residual join edges)."""
        if self._columns is not None and self._tuples is None:
            columns = self._columns
            lcol, rcol = columns[left], columns[right]
            selection = [i for i in range(len(lcol)) if lcol[i] == rcol[i]]
            return self.take(selection)
        tuples = [t for t in self.tuples() if t[left] == t[right]]
        return ColumnBatch(self.schema, tuples=tuples)

    def take(self, selection: Sequence[int]) -> "ColumnBatch":
        """Gather the rows named by a selection vector, in order."""
        if self._columns is not None and self._tuples is None:
            return ColumnBatch(
                self.schema,
                columns=[[col[i] for i in selection] for col in self._columns],
            )
        tuples = self._tuples
        return ColumnBatch(self.schema, tuples=[tuples[i] for i in selection])

    def project(self, positions: Sequence[int], schema: Schema) -> "ColumnBatch":
        """Project to the given column positions under a new schema.

        Zero-copy in column-major layout: the projected batch shares
        the picked column lists.
        """
        columns = self.columns()
        return ColumnBatch(schema, columns=[columns[p] for p in positions])

    # -- the client boundary ----------------------------------------------------

    def rows(self) -> list[Row]:
        """Materialize :class:`Row` objects (client boundary only)."""
        schema = self.schema
        return [Row(values, schema) for values in self.tuples()]

    # -- dunder -----------------------------------------------------------------

    def __len__(self) -> int:
        if self._tuples is not None:
            return len(self._tuples)
        columns = self._columns
        return len(columns[0]) if columns else 0

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        layout = "tuples" if self._tuples is not None else "columns"
        return f"ColumnBatch({len(self)} rows, {layout})"


def coalesce_chunks(
    chunks: Iterable[list[tuple]], batch_rows: int
) -> Iterator[list[tuple]]:
    """Merge small row-major chunks up to ``batch_rows`` rows.

    Heap pages and index probes produce chunks at physical granularity,
    often far smaller than a worthwhile vector.  This generator
    accumulates consecutive chunks until at least ``batch_rows`` rows
    are buffered, then emits them as one chunk.  Chunks already at or
    above the threshold pass through (concatenation order — and hence
    flattened row order — is always preserved); batches may therefore
    exceed ``batch_rows`` when a single page or probe produces more.
    """
    pending: list[tuple] = []
    for chunk in chunks:
        if not chunk:
            continue
        if not pending and len(chunk) >= batch_rows:
            yield chunk
            continue
        pending.extend(chunk)
        if len(pending) >= batch_rows:
            yield pending
            pending = []
    if pending:
        yield pending
