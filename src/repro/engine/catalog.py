"""System catalog: relations, indexes, and registered templates."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.template import QueryTemplate
from repro.errors import CatalogError

__all__ = ["Catalog"]

AnyIndex = HashIndex | OrderedIndex


class Catalog:
    """Name-to-object registry for the engine's storage objects.

    Every DDL change (relation or index created/dropped) bumps
    :attr:`version`, which compiled-plan caches compare against to
    decide whether their access-path choices are still valid.
    """

    def __init__(self) -> None:
        self._relations: dict[str, HeapRelation] = {}
        self._indexes: dict[str, AnyIndex] = {}
        # relation name -> list of its indexes, for lookup by column.
        self._relation_indexes: dict[str, list[AnyIndex]] = {}
        self._templates: dict[str, QueryTemplate] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter of DDL changes (plan-cache invalidation)."""
        return self._version

    # -- relations ------------------------------------------------------------

    def add_relation(self, relation: HeapRelation) -> HeapRelation:
        if relation.name in self._relations:
            raise CatalogError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        self._relation_indexes[relation.name] = []
        self._version += 1
        return relation

    def relation(self, name: str) -> HeapRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"no relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Iterator[HeapRelation]:
        return iter(self._relations.values())

    def drop_relation(self, name: str) -> None:
        if name not in self._relations:
            raise CatalogError(f"no relation {name!r}")
        for index in list(self._relation_indexes[name]):
            del self._indexes[index.name]
        del self._relation_indexes[name]
        del self._relations[name]
        self._version += 1

    # -- indexes ---------------------------------------------------------------

    def add_index(self, index: AnyIndex) -> AnyIndex:
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        if index.relation.name not in self._relations:
            raise CatalogError(
                f"index {index.name!r} references unregistered relation "
                f"{index.relation.name!r}"
            )
        self._indexes[index.name] = index
        self._relation_indexes[index.relation.name].append(index)
        self._version += 1
        return index

    def index(self, name: str) -> AnyIndex:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None

    def drop_index(self, name: str) -> None:
        index = self._indexes.pop(name, None)
        if index is None:
            raise CatalogError(f"no index {name!r}")
        self._relation_indexes[index.relation.name].remove(index)
        self._version += 1

    def indexes_on(self, relation_name: str) -> Sequence[AnyIndex]:
        """All indexes on a relation (empty for unknown relations)."""
        return tuple(self._relation_indexes.get(relation_name, ()))

    def find_index(
        self,
        relation_name: str,
        column: str,
        require_range: bool = False,
    ) -> AnyIndex | None:
        """The first index on ``relation_name`` keyed exactly by ``column``.

        ``column`` may be bare or qualified.  With ``require_range``,
        only ordered indexes qualify.
        """
        bare = column.split(".", 1)[1] if "." in column else column
        for index in self._relation_indexes.get(relation_name, ()):
            if index.key_columns == (bare,):
                if require_range and not index.supports_range():
                    continue
                return index
        return None

    # -- templates ---------------------------------------------------------------

    def add_template(self, template: QueryTemplate) -> QueryTemplate:
        if template.name in self._templates:
            raise CatalogError(f"template {template.name!r} already exists")
        for relation_name in template.relations:
            if relation_name not in self._relations:
                raise CatalogError(
                    f"template {template.name!r} references unknown relation "
                    f"{relation_name!r}"
                )
        self._templates[template.name] = template
        return template

    def template(self, name: str) -> QueryTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise CatalogError(f"no template {name!r}") from None

    def templates(self) -> Iterator[QueryTemplate]:
        return iter(self._templates.values())
