"""Circuit breaker for deferred-maintenance retries.

Under reader-heavy overload the maintainer's X-lock retry loop is pure
queueing-theory poison: every retry parks a writer thread on the lock
queue for another timeout+backoff round while fresh readers keep
arriving.  The breaker turns that loop off when it stops paying:

- **CLOSED** — normal operation, retries allowed.  ``failure_threshold``
  *consecutive* failures (retry budgets exhausted, or maintenance
  fail-safe clears) trip it OPEN.
- **OPEN** — retries are paused: :meth:`allow_retries` answers False,
  so maintenance makes exactly one immediate no-wait attempt and a
  denial aborts the writing statement fast instead of stalling the
  pipeline.  After ``reset_timeout`` seconds the next caller is let
  through as a half-open probe.
- **HALF_OPEN** — one probe runs with full retries.  Success closes
  the breaker; failure re-opens it for another ``reset_timeout``.

Thread-safe; state transitions are reported to an optional
:class:`~repro.core.metrics.QoSMetrics` so ``stats()`` can expose the
breaker gauge.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.metrics = metrics
        self._mutex = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opens = 0

    # -- queries -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._mutex:
            return self._effective_state()

    def _effective_state(self) -> str:
        """State after applying the reset timeout (mutex held)."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
            self._report()
        return self._state

    def allow_retries(self) -> bool:
        """Whether the caller may run its full retry/backoff loop.

        CLOSED: yes.  OPEN: no — callers degrade to a single no-wait
        attempt.  HALF_OPEN: yes for exactly one caller (the probe);
        concurrent callers during the probe stay degraded.
        """
        with self._mutex:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    # -- outcome reporting ----------------------------------------------------

    def record_success(self) -> None:
        """A maintenance pass completed: close (from any state)."""
        with self._mutex:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._report()

    def record_failure(self) -> None:
        """A retry budget was exhausted or a fail-safe clear fired."""
        with self._mutex:
            state = self._effective_state()
            if state == self.HALF_OPEN:
                # The probe failed: straight back to OPEN.
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def reset(self) -> None:
        """Force-close (the governor does this when pressure clears)."""
        with self._mutex:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._report()

    # -- internals ------------------------------------------------------------

    def _trip(self) -> None:
        """Open the breaker (mutex held)."""
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self.opens += 1
        self._report()

    def _report(self) -> None:
        if self.metrics is not None:
            self.metrics.record_breaker(self._state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state}, opens={self.opens})"
