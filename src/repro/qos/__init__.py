"""``repro.qos`` — overload protection for the serving stack.

The load-shedding brain built on the PR 3 concurrent serving layer
(DESIGN.md §10): admission control with a bounded wait queue and
token-bucket rate limiting, per-query deadline budgets that degrade
answers to explicitly-marked PMV partial results instead of blocking,
a NORMAL → DEGRADED → SHED state machine with hysteresis, a
memory/maintenance governor (UB shrinking + a circuit breaker pausing
maintenance retries), and a composed :class:`ServingGate` front end.

The paper's §3.3 promise — a transactionally consistent *partial*
answer within a millisecond while the full plan still runs — is
exactly what makes principled degradation possible: under overload the
partial answer IS the answer, marked ``complete=False``.
"""

from repro.qos.admission import AdmissionController, AdmissionSlot
from repro.qos.breaker import CircuitBreaker
from repro.qos.deadline import Deadline
from repro.qos.gate import ServingGate
from repro.qos.governor import DegradationGovernor, GovernorConfig, QoSState

__all__ = [
    "AdmissionController",
    "AdmissionSlot",
    "CircuitBreaker",
    "Deadline",
    "DegradationGovernor",
    "GovernorConfig",
    "QoSState",
    "ServingGate",
]
