"""Per-query deadline budgets.

A :class:`Deadline` is the cheap, immutable token threaded from the
serving gate through :meth:`PMVManager.execute` down to the executor's
O3 loop.  The contract (DESIGN.md §10): Operation O2 always runs — the
PMV's partial answer is the whole point of the paper — but full
execution is *best effort*: O3 is skipped when the budget is already
spent, and abandoned at the next cooperative batch checkpoint when it
runs out mid-scan.  A deadline never aborts a query; it only degrades
the answer to an explicitly-marked partial one.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Deadline"]


class Deadline:
    """An absolute point on a monotonic clock, with budget accounting.

    Build one with :meth:`after` (relative budget, the common case) or
    directly from an absolute ``expires_at``.  ``clock`` is injectable
    so deterministic tests can drive virtual time.
    """

    __slots__ = ("expires_at", "budget", "_clock")

    def __init__(
        self,
        expires_at: float,
        budget: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self.budget = budget
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ValueError("deadline budget must be >= 0")
        return cls(clock() + seconds, budget=seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def tightened(self, factor: float) -> "Deadline":
        """A new deadline with the *remaining* budget scaled by
        ``factor`` (<1 brings it forward; used by the governor's
        DEGRADED mode).  The original is unchanged."""
        if factor >= 1.0:
            return self
        now = self._clock()
        left = max(0.0, self.expires_at - now)
        return Deadline(now + left * factor, budget=self.budget * factor,
                        clock=self._clock)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.4f}s)"
