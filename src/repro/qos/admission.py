"""Admission control: the front door of the serving stack.

Without it, every arriving query eventually piles onto
``Database.statement_latch`` and the lock queues, and p99 latency
grows without bound past saturation (the `repro.bench.overload`
baseline measures exactly that collapse).  The controller keeps the
*inside* of the system at a fixed multiprogramming level and converts
excess offered load into fast, typed :class:`~repro.errors.OverloadError`
rejections at the door — the queueing happens in one bounded,
observable place instead of everywhere at once.

Three gates, each optional:

- **token-bucket rate limiter** (``rate``/``burst``): smooths arrival
  bursts; a query with no token is shed immediately (``reason="rate"``);
- **concurrency limit** (``max_concurrency``): at most this many
  queries run inside the engine at once;
- **bounded FIFO wait queue** (``max_queue_depth``, ``queue_timeout``):
  queries beyond the concurrency limit wait here; a full queue sheds
  (``reason="queue_full"``), a wait that outlives its timeout sheds
  (``reason="timeout"``).

The governor flips the controller into *shedding* mode under severe
pressure: the wait queue is bypassed and any query that cannot start
immediately is shed (``reason="shedding"``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.core.metrics import QoSMetrics
from repro.errors import OverloadError

__all__ = ["AdmissionController", "AdmissionSlot"]


class _Ticket:
    """One queued admission request, granted by a releasing slot."""

    __slots__ = ("event", "granted")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.granted = False


class AdmissionSlot:
    """An admitted query's slot; release it when the query finishes.

    Usable as a context manager::

        with controller.admit() as slot:
            ... run the query ...
    """

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionSlot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Bounded-queue, rate-limited, concurrency-capped admission."""

    def __init__(
        self,
        max_concurrency: int = 16,
        max_queue_depth: int = 32,
        queue_timeout: float = 0.5,
        rate: float | None = None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: QoSMetrics | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.queue_timeout = queue_timeout
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else 0.0)
        self._clock = clock
        self.metrics = metrics
        self._mutex = threading.Lock()
        self._running = 0
        self._queue: deque[_Ticket] = deque()
        self._tokens = self.burst
        self._last_refill = clock()
        self._shedding = False

    # -- governor hooks -------------------------------------------------------

    def set_shedding(self, shedding: bool) -> None:
        """SHED mode: bypass the wait queue — start now or shed now."""
        with self._mutex:
            self._shedding = shedding

    # -- admission ------------------------------------------------------------

    def admit(self, timeout: float | None = None) -> AdmissionSlot:
        """Admit one query or raise :class:`OverloadError`.

        ``timeout`` bounds the wait-queue time (defaults to
        ``queue_timeout``); callers with a deadline pass its remaining
        budget so a query never spends its whole budget queueing.
        """
        with self._mutex:
            if not self._take_token():
                return self._shed("rate")
            if self._running < self.max_concurrency:
                self._running += 1
                return self._admitted()
            if self._shedding:
                return self._shed("shedding")
            if len(self._queue) >= self.max_queue_depth:
                return self._shed("queue_full")
            ticket = _Ticket()
            self._queue.append(ticket)
        wait = self.queue_timeout if timeout is None else timeout
        granted = ticket.event.wait(wait)
        if granted:
            # The releaser handed its slot over; _running already counts us.
            return self._admitted()
        with self._mutex:
            if ticket.granted:
                # Granted in the race window between wait() expiring and
                # re-taking the mutex: the slot is ours after all.
                return self._admitted()
            self._queue.remove(ticket)
            return self._shed("timeout")

    def _release(self) -> None:
        """Free one slot, handing it to the queue head when one waits."""
        with self._mutex:
            while self._queue:
                ticket = self._queue.popleft()
                ticket.granted = True
                ticket.event.set()
                # Slot transferred, _running unchanged.
                return
            self._running -= 1

    # -- internals (mutex held) ----------------------------------------------

    def _take_token(self) -> bool:
        if self.rate is None:
            return True
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def _admitted(self) -> AdmissionSlot:
        if self.metrics is not None:
            self.metrics.record_admitted()
        return AdmissionSlot(self)

    def _shed(self, reason: str) -> AdmissionSlot:
        if self.metrics is not None:
            self.metrics.record_shed(reason)
        raise OverloadError(f"query shed by admission control ({reason})", reason)

    # -- inspection -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._mutex:
            return len(self._queue)

    @property
    def running(self) -> int:
        with self._mutex:
            return self._running

    def stats(self) -> dict:
        with self._mutex:
            return {
                "running": self._running,
                "queued": len(self._queue),
                "max_concurrency": self.max_concurrency,
                "max_queue_depth": self.max_queue_depth,
                "rate": self.rate,
                "shedding": self._shedding,
            }
