"""The QoS serving gate: admission + deadlines + degradation, composed.

:class:`ServingGate` is the overload-protected front end of a
:class:`~repro.core.manager.PMVManager`.  Every query passes through:

1. **admission** — the :class:`~repro.qos.admission.AdmissionController`
   either grants a slot (possibly after a bounded, deadline-aware
   queue wait) or sheds the query with a typed
   :class:`~repro.errors.OverloadError`;
2. **deadline** — a per-query budget (the caller's, or the gate's
   default, tightened by the governor's state) threaded down to the
   executor: O2 always runs, O3 is skipped or abandoned when the
   budget is spent, and the answer comes back explicitly marked
   ``complete=False``;
3. **observation** — completion latency and outcome feed the
   :class:`~repro.qos.governor.DegradationGovernor`, which ticks at a
   bounded rate from the query path itself (no background thread, so
   tests and benchmarks stay deterministic).

The gate never *improves* an answer — a degraded answer is always a
true subset of the full answer (`repro.bench.overload` replay-verifies
this row for row) — it only bounds how long anyone waits for it.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.executor import PMVQueryResult
from repro.core.metrics import QoSMetrics
from repro.qos.admission import AdmissionController
from repro.qos.deadline import Deadline
from repro.qos.governor import DegradationGovernor, GovernorConfig

__all__ = ["ServingGate"]


class ServingGate:
    """Overload-protected query execution over a PMVManager fleet."""

    def __init__(
        self,
        manager,
        admission: AdmissionController | None = None,
        governor: DegradationGovernor | None = None,
        governor_config: GovernorConfig | None = None,
        default_deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.manager = manager
        self.metrics = QoSMetrics()
        self.admission = admission or AdmissionController(metrics=self.metrics)
        if self.admission.metrics is None:
            self.admission.metrics = self.metrics
        self.governor = governor or DegradationGovernor(
            manager, self.admission, config=governor_config, metrics=self.metrics
        )
        if self.governor.metrics is None:
            self.governor.metrics = self.metrics
            self.governor.breaker.metrics = self.metrics
        self.default_deadline = default_deadline
        self._clock = clock
        # Lease-gated serving (DESIGN.md §16): when a PrimaryNode binds
        # itself here, this raises NodeIsolatedError before admission
        # while the node's coordinator lease is expired — an isolated
        # node must not serve reads or accept writes.
        self.serving_check: Callable[[], None] | None = None

    # -- the protected query path --------------------------------------------

    def execute(
        self,
        query,
        deadline: Deadline | float | None = None,
        txn=None,
        distinct: bool = False,
        on_o3=None,
    ) -> PMVQueryResult:
        """Run ``query`` under admission control and a deadline budget.

        ``deadline`` is a :class:`Deadline`, a relative budget in
        seconds, or ``None`` for the gate's default.  Raises
        :class:`~repro.errors.OverloadError` when the query is shed;
        otherwise always returns an answer — complete when the budget
        allowed O3 to finish, else the PMV partial answer with
        ``result.complete`` False.
        """
        if self.serving_check is not None:
            self.serving_check()
        deadline = self._resolve_deadline(deadline)
        slot = self.admission.admit(
            timeout=None if deadline is None else deadline.remaining()
        )
        started = self._clock()
        try:
            result = self.manager.execute(
                query, txn=txn, distinct=distinct, on_o3=on_o3, deadline=deadline
            )
        finally:
            slot.release()
            elapsed = self._clock() - started
            self.governor.observe_latency(elapsed)
            self.governor.maybe_tick()
        self.metrics.record_answer(
            result.complete, abandoned=result.degraded_reason == "deadline-abandon"
        )
        return result

    def admit_write(self, deadline: Deadline | float | None = None):
        """Admit one DML statement through the same admission controller
        as queries; returns the slot (caller releases after the write).

        The network tier routes remote writes through here so they
        cannot bypass overload protection the way in-process callers
        can't bypass it for reads.  ``deadline`` bounds the queue wait
        exactly as for queries; sheds raise
        :class:`~repro.errors.OverloadError`.
        """
        if self.serving_check is not None:
            self.serving_check()
        deadline = self._resolve_deadline(deadline)
        return self.admission.admit(
            timeout=None if deadline is None else deadline.remaining()
        )

    def _resolve_deadline(self, deadline: Deadline | float | None) -> Deadline | None:
        if deadline is None:
            if self.default_deadline is None:
                return None
            deadline = self.default_deadline
        if not isinstance(deadline, Deadline):
            deadline = Deadline.after(float(deadline), clock=self._clock)
        return deadline.tightened(self.governor.deadline_factor_now())

    # -- failover -------------------------------------------------------------

    def rebind(self, manager, configured_bounds: dict[str, int | None] | None = None) -> None:
        """Route all future queries to ``manager`` (failover rewiring).

        The :class:`~repro.replication.FailoverCoordinator` calls this
        after promoting a replica: the gate's admission controller,
        deadlines, and governor state all survive — only the fleet
        underneath changes.  The governor adopts the new fleet first
        (restoring configured PMV UBs even mid-DEGRADED, DESIGN.md
        §11), so no query ever reaches a promoted view still carrying
        the dead primary's shrunken budget.
        """
        self.governor.adopt_manager(manager, configured_bounds)
        self.manager = manager

    # -- inspection -----------------------------------------------------------

    def stats(self) -> dict:
        """One consistent report: QoS counters (under the record
        mutex), admission gauges, governor/breaker state, and each
        managed view's counter snapshot."""
        report = self.metrics.snapshot()
        report["admission"] = self.admission.stats()
        report["governor"] = self.governor.stats()
        report["views"] = {
            managed.view.template.name: managed.view.metrics.snapshot()
            for managed in self.manager.managed()
        }
        database = self.manager.database
        report["database_swallowed_errors"] = database.swallowed_errors
        wal = database.wal
        report["wal_checksum_failures"] = 0 if wal is None else wal.checksum_failures
        # Resource model (DESIGN.md §15): WAL repairs are reported with
        # their truncation point (segment + offset), never silent; the
        # disk-full gauge tells operators the instance is read-only.
        report["wal_repairs"] = 0 if wal is None else wal.repairs
        report["wal_last_repair"] = None if wal is None else wal.last_repair
        report["wal_resources"] = None if wal is None else wal.resource_stats()
        report["outbox"] = (
            None if database.outbox is None else database.outbox.stats()
        )
        report["disk_full"] = {
            "active": database.disk_full,
            "refusals": database.disk_full_refusals,
            "recoveries": database.disk_full_recoveries,
        }
        return report
