"""The degradation state machine and the memory/maintenance governor.

Three serving states with hysteresis (DESIGN.md §10):

::

              pressure ELEVATED                pressure SEVERE
    NORMAL  ─────────────────────▶  DEGRADED ─────────────────────▶  SHED
       ▲                                │ ▲                            │
       └────  healthy × recover_ticks ──┘ └── not SEVERE × recover ────┘

Pressure is computed from three signals, sampled at every
:meth:`DegradationGovernor.tick`:

- the admission controller's **queue depth**;
- the **p99 latency** of a sliding window of recently completed queries;
- the **lock-timeout rate** (delta of the lock manager's ``timeouts``
  counter since the previous tick) — the leading indicator that the
  S/X pipeline is thrashing;
- the **CDC backlog depth** (pending records in the change outbox,
  when one is attached) — a drain that cannot keep up with the write
  rate grows the feed without bound, and the right response is
  backpressure (widened freshness + admission throttle), not OOM
  (DESIGN.md §15).

Entering DEGRADED engages the governor's pressure-relief actions, all
reversed when the machine returns to NORMAL:

- async-maintained views' freshness bounds are widened by
  ``freshness_widen_factor`` *first* — trading staleness before memory,
  so answers stay on the PMV path (DESIGN.md §13);
- every managed PMV's UB byte budget is shrunk by ``ub_shrink_factor``
  (``PartialMaterializedView.set_upper_bound`` sheds entries via the
  replacement policy; below one entry the view degrades to
  empty-but-alive, never an error);
- deferred-maintenance retries are put behind the
  :class:`~repro.qos.breaker.CircuitBreaker`, so writer statements
  stop parking on the lock queue when retries keep losing;
- query deadlines are tightened by ``deadline_factor`` (the serving
  gate consults :meth:`deadline_factor_now`).

Entering SHED additionally flips the admission controller into
queue-bypass shedding.  Step-downs require ``recover_ticks``
*consecutive* healthy ticks — the hysteresis that prevents flapping at
the threshold.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.metrics import QoSMetrics
from repro.qos.admission import AdmissionController
from repro.qos.breaker import CircuitBreaker

__all__ = ["QoSState", "GovernorConfig", "DegradationGovernor"]


class QoSState:
    NORMAL = "NORMAL"
    DEGRADED = "DEGRADED"
    SHED = "SHED"


@dataclass(frozen=True)
class GovernorConfig:
    """Knobs of the degradation state machine (see README's QoS table)."""

    degrade_p99: float = 0.5
    """p99 latency (seconds) at which NORMAL escalates to DEGRADED."""
    shed_p99: float = 2.0
    """p99 latency at which anything escalates to SHED."""
    degrade_queue: int = 8
    """Admission queue depth at which NORMAL escalates to DEGRADED."""
    shed_queue: int = 24
    """Admission queue depth at which anything escalates to SHED."""
    lock_timeout_rate: int = 5
    """Lock timeouts per tick at which NORMAL escalates to DEGRADED."""
    degrade_backlog: int = 512
    """Pending CDC outbox records at which NORMAL escalates to
    DEGRADED (maintenance backpressure instead of unbounded memory)."""
    shed_backlog: int = 4096
    """Pending CDC outbox records at which anything escalates to SHED."""
    recover_ticks: int = 2
    """Consecutive healthy ticks required before stepping down one
    state (the hysteresis)."""
    ub_shrink_factor: float = 0.5
    """DEGRADED shrinks every managed PMV's UB to this fraction."""
    freshness_widen_factor: float = 4.0
    """DEGRADED multiplies every async-maintained executor's
    ``freshness_bound`` by this, *before* any UB is shrunk: tolerating
    more staleness keeps answers on the cheap PMV path and relieves
    pressure without giving up cache residency (DESIGN.md §13)."""
    deadline_factor: float = 0.5
    """DEGRADED multiplies each query's deadline budget by this."""
    latency_window: int = 256
    """Completed-query latencies kept for the p99 estimate."""
    tick_interval: float = 0.25
    """Minimum seconds between automatic ticks (gate-driven)."""


class DegradationGovernor:
    """Drives NORMAL → DEGRADED → SHED from observed pressure."""

    def __init__(
        self,
        manager,
        admission: AdmissionController,
        config: GovernorConfig | None = None,
        breaker: CircuitBreaker | None = None,
        metrics: QoSMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.manager = manager
        self.admission = admission
        self.config = config or GovernorConfig()
        self.metrics = metrics
        self.breaker = breaker or CircuitBreaker(metrics=metrics)
        self._clock = clock
        self._mutex = threading.Lock()
        self._tick_mutex = threading.Lock()
        self._state = QoSState.NORMAL
        self._healthy_streak = 0
        self._latencies: deque[float] = deque(maxlen=self.config.latency_window)
        self._last_lock_timeouts: int | None = None
        self._last_tick = clock()
        self._saved_upper_bounds: dict[str, int | None] = {}
        self._saved_freshness_bounds: dict[str, int] = {}
        self.transitions: list[tuple[str, str]] = []
        # Lease isolation probe (DESIGN.md §16): installed by
        # PrimaryNode.bind_gate.  An ISOLATED node is severe pressure by
        # definition — it cannot serve, so the admission queue must shed
        # instead of parking callers behind a lease that may never renew.
        self.isolation_probe: Callable[[], bool] | None = None

    # -- observations ---------------------------------------------------------

    @property
    def state(self) -> str:
        with self._mutex:
            return self._state

    def observe_latency(self, seconds: float) -> None:
        """Record one completed query's end-to-end latency."""
        with self._mutex:
            self._latencies.append(seconds)

    def p99_latency(self) -> float:
        with self._mutex:
            return self._p99()

    def _p99(self) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        return ordered[int(0.99 * (len(ordered) - 1))]

    def deadline_factor_now(self) -> float:
        """The deadline multiplier for the current state (<= 1)."""
        with self._mutex:
            if self._state == QoSState.NORMAL:
                return 1.0
            return self.config.deadline_factor

    # -- the tick -------------------------------------------------------------

    def maybe_tick(self) -> None:
        """Tick if at least ``tick_interval`` elapsed (gate-driven)."""
        if self._clock() - self._last_tick >= self.config.tick_interval:
            self.tick()

    def tick(self) -> str:
        """Sample pressure and run one state-machine step.

        Serialized: concurrent callers skip rather than queue, so the
        tick can be driven from the query path without convoying.
        Returns the (possibly new) state.
        """
        if not self._tick_mutex.acquire(blocking=False):
            return self.state
        try:
            self._last_tick = self._clock()
            pressure = self._pressure_level()
            return self._step(pressure)
        finally:
            self._tick_mutex.release()

    def _pressure_level(self) -> str:
        """Classify current pressure: ``severe``/``elevated``/``healthy``."""
        cfg = self.config
        queue_depth = self.admission.queue_depth
        p99 = self.p99_latency()
        timeouts = self.manager.database.lock_manager.stats()["timeouts"]
        with self._mutex:
            last = self._last_lock_timeouts
            self._last_lock_timeouts = timeouts
        timeout_delta = 0 if last is None else max(0, timeouts - last)
        backlog = self._backlog_depth()
        if self.isolation_probe is not None and self.isolation_probe():
            return "severe"
        if (
            p99 >= cfg.shed_p99
            or queue_depth >= cfg.shed_queue
            or backlog >= cfg.shed_backlog
        ):
            return "severe"
        if (
            p99 >= cfg.degrade_p99
            or queue_depth >= cfg.degrade_queue
            or timeout_delta >= cfg.lock_timeout_rate
            or backlog >= cfg.degrade_backlog
        ):
            return "elevated"
        return "healthy"

    def _backlog_depth(self) -> int:
        """Pending CDC outbox records (0 when no outbox is attached).

        Read defensively through ``manager.database.outbox`` — test
        fixtures hand the governor bare fake managers, and the governor
        must keep working unchanged without the CDC layer."""
        outbox = getattr(getattr(self.manager, "database", None), "outbox", None)
        if outbox is None:
            return 0
        return len(outbox)

    def _step(self, pressure: str) -> str:
        with self._mutex:
            state = self._state
        if pressure == "severe":
            self._healthy_streak = 0
            if state != QoSState.SHED:
                if state == QoSState.NORMAL:
                    self._enter_degraded()
                self._enter_shed()
            return self.state
        if pressure == "elevated":
            self._healthy_streak = 0
            if state == QoSState.NORMAL:
                self._enter_degraded()
            # DEGRADED under elevated pressure holds; SHED holds too —
            # stepping down from SHED requires the pressure to drop
            # below the *degrade* thresholds, not just the shed ones.
            return self.state
        # healthy: hysteresis before stepping down one level.
        self._healthy_streak += 1
        if self._healthy_streak >= self.config.recover_ticks:
            self._healthy_streak = 0
            if state == QoSState.SHED:
                self._exit_shed()
            elif state == QoSState.DEGRADED:
                self._exit_degraded()
        return self.state

    # -- failover -------------------------------------------------------------

    def adopt_manager(self, manager, configured_bounds: dict[str, int | None] | None = None) -> None:
        """Rebind the governor to a promoted replica's PMV fleet.

        Failover while DEGRADED is the trap this guards: the old
        fleet's shrunken budgets (and this governor's saved-bounds map)
        belong to views that just died with the primary.  The promoted
        replica's warm PMVs must serve at their *configured* UBs — a
        standby promoted into a degraded budget would throw away the
        very cache warmth replication paid to keep.

        Every adopted view's UB is restored via ``set_upper_bound``
        before it serves (from ``configured_bounds`` keyed by view
        name, else the view's own ``configured_upper_bound_bytes``),
        and the saved-bounds map is re-seeded with those values so a
        later step-down to NORMAL re-applies them harmlessly.  While
        DEGRADED/SHED, the breaker still guards the adopted
        maintainers — pressure policy survives the failover even
        though budgets are restored.
        """
        with self._mutex:
            state = self._state
            self._saved_upper_bounds.clear()
            self._saved_freshness_bounds.clear()
            self._last_lock_timeouts = None
        self.manager = manager
        bounds = configured_bounds or {}
        for managed in manager.managed():
            view = managed.view
            target = bounds.get(view.name, view.configured_upper_bound_bytes)
            view.set_upper_bound(target)
            if state != QoSState.NORMAL:
                with self._mutex:
                    self._saved_upper_bounds[view.name] = target
                managed.maintainer.breaker = self.breaker

    # -- transitions (actions + bookkeeping) ----------------------------------

    def _transition(self, new_state: str) -> None:
        with self._mutex:
            old = self._state
            self._state = new_state
        self.transitions.append((old, new_state))
        if self.metrics is not None:
            self.metrics.record_transition(new_state)

    def _enter_degraded(self) -> None:
        """Engage the memory/maintenance governor.

        Freshness is widened before a single byte of UB is given up:
        an async-maintained view serving slightly-staler answers stays
        on the cheap PMV path, which is often all the relief needed —
        cache residency (the expensive thing to rebuild) is sacrificed
        only second.
        """
        for managed in self.manager.managed():
            view, executor = managed.view, managed.executor
            if view.async_maintenance and executor.freshness_bound is not None:
                self._saved_freshness_bounds[view.name] = executor.freshness_bound
                executor.freshness_bound = max(
                    executor.freshness_bound,
                    int(executor.freshness_bound * self.config.freshness_widen_factor),
                )
        for managed in self.manager.managed():
            view = managed.view
            self._saved_upper_bounds[view.name] = view.upper_bound_bytes
            if view.upper_bound_bytes is not None:
                view.set_upper_bound(
                    max(1, int(view.upper_bound_bytes * self.config.ub_shrink_factor))
                )
            managed.maintainer.breaker = self.breaker
        self._transition(QoSState.DEGRADED)

    def _exit_degraded(self) -> None:
        """Pressure cleared: restore budgets and retry policy."""
        for managed in self.manager.managed():
            view = managed.view
            if view.name in self._saved_upper_bounds:
                view.set_upper_bound(self._saved_upper_bounds.pop(view.name))
            if view.name in self._saved_freshness_bounds:
                managed.executor.freshness_bound = (
                    self._saved_freshness_bounds.pop(view.name)
                )
            managed.maintainer.breaker = None
        self.breaker.reset()
        self._transition(QoSState.NORMAL)

    def _enter_shed(self) -> None:
        self.admission.set_shedding(True)
        self._transition(QoSState.SHED)

    def _exit_shed(self) -> None:
        self.admission.set_shedding(False)
        self._transition(QoSState.DEGRADED)

    # -- inspection -----------------------------------------------------------

    def stats(self) -> dict:
        backlog = self._backlog_depth()
        isolated = self.isolation_probe is not None and self.isolation_probe()
        with self._mutex:
            return {
                "state": self._state,
                "isolated": isolated,
                "p99_latency": self._p99(),
                "healthy_streak": self._healthy_streak,
                "transitions": len(self.transitions),
                "breaker_state": self.breaker.state,
                "breaker_opens": self.breaker.opens,
                "cdc_backlog": backlog,
            }
