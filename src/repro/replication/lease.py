"""Coordinator-granted serving leases and the heartbeat control link.

The partition problem fencing alone cannot solve: fencing stamps the
new epoch into the *old primary's* WAL, which requires reaching the old
primary.  Under an asymmetric partition the coordinator cannot reach it
— yet clients still can, so a deposed-but-reachable primary would keep
serving reads whose staleness stamps silently lie (they are computed
against a WAL that is no longer the authoritative timeline).

Leases close that window from the primary's side (DESIGN.md §16):

- every accepted heartbeat returns a :class:`Lease` valid for
  ``lease_ttl`` seconds;
- a primary whose lease expires — because its heartbeats stopped
  reaching the coordinator — drops into **ISOLATED** mode and refuses
  reads and writes with :class:`~repro.errors.NodeIsolatedError`
  (retryable) instead of serving possibly-deposed answers;
- the coordinator refuses to promote until the last lease it granted
  has *provably expired*, so there is no instant at which the old
  primary may still serve while a new primary already accepts writes.

Clocks are injectable and the protocol assumes bounded skew between
the coordinator's and the primary's clock (zero in tests and the
nemesis drill, which share one fake clock); a deployment would subtract
the skew bound from the TTL the primary honours.

:class:`ControlLink` is the heartbeat/lease channel as a nemesis seam:
a directed coordinator↔primary connection that a
:class:`~repro.faults.partition.PartitionPlan` can cut and heal.  While
cut, heartbeats do not reach the coordinator and granted leases do not
reach the primary — the exact failure the lease machinery exists for.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Lease", "ControlLink"]


@dataclass(frozen=True)
class Lease:
    """One serving grant: "you are the epoch-``epoch`` primary until
    ``expires_at``" on the granting coordinator's clock."""

    epoch: int
    granted_at: float
    expires_at: float

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


class ControlLink:
    """The coordinator↔primary heartbeat channel, cuttable per side.

    ``pump()`` performs one heartbeat round trip: the primary's
    liveness (and its semi-sync ``acked_lsn``) travels up, the renewed
    lease travels back down.  Cutting the *up* direction models a
    primary that looks dead to the coordinator while still holding an
    unexpired lease; cutting the *down* direction models a primary that
    keeps the coordinator informed but cannot learn its lease was
    renewed (it self-isolates conservatively).  ``cut()`` with no
    argument severs both, the symmetric partition.
    """

    def __init__(self, coordinator, primary) -> None:
        self.coordinator = coordinator
        self.primary = primary
        self.up = True  # primary -> coordinator (heartbeats)
        self.down = True  # coordinator -> primary (lease grants)
        self.heartbeats_delivered = 0
        self.heartbeats_lost = 0
        self.leases_delivered = 0
        self.leases_lost = 0

    def cut(self, direction: str = "both") -> None:
        if direction in ("both", "up"):
            self.up = False
        if direction in ("both", "down"):
            self.down = False

    def heal(self, direction: str = "both") -> None:
        if direction in ("both", "up"):
            self.up = True
        if direction in ("both", "down"):
            self.down = True

    @property
    def connected(self) -> bool:
        return self.up and self.down

    def pump(self) -> Lease | None:
        """One heartbeat round trip, subject to the cut state.

        Returns the lease the primary adopted, or None when either
        direction was down (or the coordinator refused — e.g. this
        primary has been deposed and is no longer the leaseholder).
        """
        if not self.up:
            self.heartbeats_lost += 1
            return None
        lease = self.coordinator.heartbeat_from(self.primary)
        self.heartbeats_delivered += 1
        if lease is None:
            return None
        if not self.down:
            self.leases_lost += 1
            return None
        self.primary.adopt_lease(lease)
        self.leases_delivered += 1
        return lease

    def rebind(self, primary) -> None:
        """Point the link at a promoted primary (the control plane's
        connection follows the leaseholder)."""
        self.primary = primary
        self.up = True
        self.down = True

    def stats(self) -> dict:
        return {
            "up": self.up,
            "down": self.down,
            "heartbeats_delivered": self.heartbeats_delivered,
            "heartbeats_lost": self.heartbeats_lost,
            "leases_delivered": self.leases_delivered,
            "leases_lost": self.leases_lost,
        }
