"""The log-shipping wire format and the lossy in-process transport.

Replication ships the primary's WAL as-is: each message carries one
serialized :class:`~repro.engine.wal.LogRecord` line — CRC32 frame
included, so the checksum written at append time is the checksum
verified at apply time — plus the sender's ``epoch`` (the fencing
token) and its current ``watermark`` (last LSN on the primary, from
which replicas compute their lag).

:class:`ReplicationLink` is one primary→replica connection.  It is
deliberately in-process and synchronous — ``send`` delivers straight
into :meth:`ReplicaNode.receive` — but every send passes through the
``ship.send`` fault site of a :class:`~repro.faults.inject.FaultInjector`,
so a :class:`~repro.faults.plan.FaultPlan` can make the link drop,
duplicate, reorder, or partition deterministically.  Recovery from all
four is the same mechanism: the primary re-ships everything past the
link's acked watermark on each pump, and the replica ignores duplicates
and buffers out-of-order records, so any healed link converges (the
property test in ``tests/properties`` drives random fault plans through
exactly this loop).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.engine.wal import LogRecord
from repro.errors import ReplicationError, StaleEpochError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultMode

__all__ = ["SHIP_SITE", "ShippedRecord", "ReplicationLink"]

SHIP_SITE = "ship.send"
"""The transport's fault site (see :mod:`repro.faults.plan`)."""


@dataclass(frozen=True)
class ShippedRecord:
    """One replication message.

    ``line`` is the record's durable JSON-line form *verbatim*,
    including its CRC32 — decoding re-verifies the checksum, so a
    record corrupted anywhere between the primary's disk and the
    replica's apply loop fails loudly
    (:class:`~repro.errors.WALChecksumError`).
    """

    epoch: int
    watermark: int
    line: str

    def to_wire(self) -> str:
        return json.dumps(
            {"epoch": self.epoch, "watermark": self.watermark, "record": self.line},
            separators=(",", ":"),
        )

    @staticmethod
    def from_wire(text: str) -> "ShippedRecord":
        try:
            data = json.loads(text)
            return ShippedRecord(
                epoch=data["epoch"],
                watermark=data["watermark"],
                line=data["record"],
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ReplicationError(f"malformed replication message: {exc}") from exc

    def decode(self) -> LogRecord:
        """Parse (and checksum-verify) the shipped log record."""
        return LogRecord.from_json(self.line)


class ReplicationLink:
    """One primary→replica connection with injectable link faults.

    The link tracks the ``acked_lsn`` watermark — the highest LSN the
    replica had durably applied the last time an acknowledgement was
    readable (i.e. the link was not partitioned).  The primary ships
    from this watermark on every pump, which makes retransmission
    automatic: a dropped or partitioned-away record is simply still
    past the watermark next time.

    On a segmented primary WAL the same watermark is also pinned into
    the log's :class:`~repro.engine.wal.LsnRetentionRegistry` (as
    ``ship:<replica-name>``, see ``PrimaryNode._pin_retention``), so
    checkpoint truncation never deletes a segment this link still has
    to ship — a lagging replica retransmits from the live log or the
    archive instead of being forced into a snapshot bootstrap.
    """

    def __init__(self, replica, injector: FaultInjector | None = None) -> None:
        self.replica = replica
        self.injector = injector
        self.acked_lsn = getattr(replica, "applied_lsn", 0)
        self.partitioned = False
        self._held: list[str] = []  # reorder buffer
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.partitions = 0
        self.stale_epoch_rejects = 0

    # -- sending --------------------------------------------------------------

    def send(self, wire: str) -> None:
        """Ship one message, subject to the link's scheduled faults."""
        self.sent += 1
        if self.partitioned:
            self.dropped += 1
            return
        spec = self.injector.check(SHIP_SITE) if self.injector is not None else None
        mode = spec.mode if spec is not None else None
        if mode is FaultMode.DROP:
            self.dropped += 1
            return
        if mode is FaultMode.PARTITION:
            # The link goes down mid-send: this message and the reorder
            # buffer are lost, and nothing flows until heal().
            self.partitioned = True
            self.partitions += 1
            self.dropped += 1 + len(self._held)
            self._held.clear()
            return
        if mode is FaultMode.REORDER:
            # Hold the message back; it rides behind the next delivery.
            self.reordered += 1
            self._held.append(wire)
            return
        self._deliver(wire)
        if mode is FaultMode.DUPLICATE:
            self.duplicated += 1
            self._deliver(wire)
        while self._held:
            self._deliver(self._held.pop(0))

    def heal(self) -> None:
        """Bring a partitioned link back up (messages lost while down
        stay lost; the watermark-based pump re-ships them)."""
        self.partitioned = False

    def _deliver(self, wire: str) -> None:
        try:
            self.replica.receive(wire)
        except StaleEpochError:
            # The receiver outlived this sender's reign.  The zombie
            # primary learns it through the counter — its writes are
            # additionally refused by its own fenced WAL.
            self.stale_epoch_rejects += 1
            return
        self.delivered += 1

    # -- acknowledgement ------------------------------------------------------

    def read_ack(self) -> int:
        """Read the replica's applied watermark, if the link is up."""
        if not self.partitioned:
            self.acked_lsn = max(self.acked_lsn, self.replica.applied_lsn)
        return self.acked_lsn

    def stats(self) -> dict:
        return {
            "acked_lsn": self.acked_lsn,
            "partitioned": self.partitioned,
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "partitions": self.partitions,
            "stale_epoch_rejects": self.stale_epoch_rejects,
        }
