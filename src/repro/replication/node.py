"""Primary and replica nodes for WAL-shipping replication.

A :class:`PrimaryNode` wraps the serving database (and optionally its
PMV fleet) and pumps its WAL down every attached
:class:`~repro.replication.ship.ReplicationLink`.  A
:class:`ReplicaNode` owns an initially-empty database of its own and
applies the shipped log through the exact
:func:`~repro.engine.wal.replay_record` path crash recovery uses — the
two cannot drift apart, and the replica's local WAL hands out the same
LSNs as the primary's, so a promoted replica's log is a verbatim
continuation of the primary's history.

Warm-standby PMVs: a replica mirrors the primary's view fleet
(:meth:`ReplicaNode.mirror_views`, driven by
:meth:`~repro.core.manager.PMVManager.view_specs`) and keeps the
maintainers attached, so every applied delta maintains the standby's
cache exactly as it maintained the primary's — the hot set survives
failover instead of restarting cold.  Replica reads go through
:meth:`ReplicaNode.serve` under a bounded-staleness contract: behind
the primary's watermark, the answer is explicitly flagged
``complete=False, degraded_reason="replica_lag"``; beyond the caller's
staleness bound, the read is refused with
:class:`~repro.errors.ReplicaLagError` instead of silently serving
ancient data.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.manager import PMVManager
from repro.engine.database import Database
from repro.engine.snapshot import restore_snapshot, snapshot_from_json
from repro.engine.wal import LogKind, WriteAheadLog, replay_record
from repro.errors import (
    NodeIsolatedError,
    ReplicaLagError,
    ReplicationError,
    StaleEpochError,
)
from repro.faults.inject import FaultInjector
from repro.replication.lease import Lease
from repro.replication.ship import ReplicationLink, ShippedRecord

__all__ = ["PrimaryNode", "ReplicaNode"]


class PrimaryNode:
    """The write side: ships its WAL to the attached replicas.

    Shipping is pull-based and deterministic: nothing moves until
    :meth:`ship` pumps, which sends every record past each link's
    acked watermark and then reads the ack back.  Re-pumping after a
    drop, duplicate, reorder, or healed partition converges the
    replicas — retransmission is just "still past the watermark".
    """

    def __init__(
        self,
        database: Database,
        manager: PMVManager | None = None,
        epoch: int = 1,
        name: str = "primary",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if database.wal is None:
            raise ReplicationError("a replicating primary needs a WAL")
        self.database = database
        self.manager = manager
        self.epoch = epoch
        self.name = name
        self.links: list[ReplicationLink] = []
        # Lease gating (DESIGN.md §16): until a coordinator grants one,
        # ``lease`` is None and the node serves ungated (legacy mode —
        # standalone primaries and fence-only clusters keep working).
        self._clock = clock
        self.lease: Lease | None = None
        self.isolated_refusals = 0

    def attach_replica(
        self, replica: "ReplicaNode", injector: FaultInjector | None = None
    ) -> ReplicationLink:
        """Open a link to ``replica`` (optionally with a fault seam).

        The link immediately registers its (zero) watermark with the
        WAL's retention registry: from this moment segment reclamation
        cannot retire records the replica has not acknowledged beyond
        reach — a lagging replica re-reads them from the archive
        instead of being forced into a snapshot bootstrap.
        """
        replica.observe_epoch(self.epoch)
        link = ReplicationLink(replica, injector=injector)
        self.links.append(link)
        self._pin_retention(link)
        return link

    def _pin_retention(self, link: ReplicationLink) -> None:
        wal = self.database.wal
        if wal is not None and hasattr(wal, "retention"):
            wal.retention.update(f"ship:{link.replica.name}", link.acked_lsn)

    def ship(self) -> int:
        """Pump every link once; returns the number of sends issued.

        Partitioned links are skipped (nothing flows on a down link);
        after healing, the next pump re-ships from their watermark.
        Reading ``after_lsn=read_ack()`` transparently falls back to
        the WAL's archived segments when the ack trails the reclaimed
        prefix (the retransmit-from-archive path); each pump then
        republishes the link's fresh ack to the retention registry.
        """
        sends = 0
        watermark = self.database.wal.last_lsn
        for link in self.links:
            if link.partitioned:
                continue
            for record in self.database.wal.records(after_lsn=link.read_ack()):
                message = ShippedRecord(
                    epoch=self.epoch, watermark=watermark, line=record.to_json()
                )
                link.send(message.to_wire())
                sends += 1
                if link.partitioned:
                    break  # the send itself took the link down
            link.read_ack()
            self._pin_retention(link)
        return sends

    @property
    def acked_lsn(self) -> int:
        """Highest LSN at least one replica has durably applied — the
        semi-synchronous acknowledgement watermark.  A write at or
        below this LSN survives primary death by protocol (the
        coordinator promotes the most-caught-up replica)."""
        return max((link.acked_lsn for link in self.links), default=0)

    def heartbeat(self, coordinator) -> None:
        """Tell the failover coordinator this primary is alive.

        When the coordinator runs lease-gated promotion the accepted
        heartbeat returns a renewed :class:`Lease`, which this node
        adopts; without leases nothing comes back and the call degrades
        to the legacy liveness notification."""
        self.adopt_lease(coordinator.heartbeat_from(self))

    # -- lease gating ---------------------------------------------------------

    def adopt_lease(self, lease: Lease | None) -> None:
        """Install a coordinator-granted lease (None is ignored, so an
        ungated heartbeat round trip changes nothing)."""
        if lease is not None:
            self.lease = lease

    def is_isolated(self) -> bool:
        """Whether this node is lease-gated *and* its lease expired.

        An isolated node must refuse reads and writes: its heartbeats
        stopped reaching the coordinator, so for all it knows a standby
        has been (or is being) promoted and this WAL is no longer the
        authoritative timeline."""
        return self.lease is not None and not self.lease.valid_at(self._clock())

    @property
    def mode(self) -> str:
        """``ACTIVE`` (serving) or ``ISOLATED`` (read-refusing)."""
        return "ISOLATED" if self.is_isolated() else "ACTIVE"

    def check_serving(self) -> None:
        """Refuse service while isolated (the gate's serving check).

        Installed as :attr:`~repro.qos.gate.ServingGate.serving_check`
        by the coordinator, so every read and write admitted through
        the gate first proves the node still holds a valid lease."""
        if self.is_isolated():
            self.isolated_refusals += 1
            raise NodeIsolatedError(
                f"{self.name} is ISOLATED: lease for epoch "
                f"{self.lease.epoch} expired at {self.lease.expires_at:.3f} "
                f"(now {self._clock():.3f}); refusing to serve"
            )

    def bind_gate(self, gate) -> None:
        """Install this node's lease check on a serving gate, and the
        isolation pressure probe on its governor (ISOLATED reads as
        *severe* pressure: shed instead of serving possibly-deposed
        answers)."""
        gate.serving_check = self.check_serving
        governor = getattr(gate, "governor", None)
        if governor is not None:
            governor.isolation_probe = self.is_isolated

    def idempotency_keys(self) -> dict[str, int]:
        """Every idempotency key in this node's WAL, mapped to the LSN
        of its (last) statement.

        DML payloads carry the client's key verbatim
        (:meth:`~repro.engine.database.Database.insert` ``idem=``), and
        :func:`~repro.engine.wal.replay_record` re-logs it on replicas
        — so after a failover the promoted node's log is the ground
        truth the network tier rebuilds its dedup table from.  By the
        semi-sync acknowledgement rule, every *acknowledged* write's
        key is necessarily here.
        """
        keys: dict[str, int] = {}
        for record in self.database.wal.records():
            idem = record.payload.get("idem") if record.payload else None
            if idem is not None:
                keys[idem] = record.lsn
        return keys

    def lag_report(self) -> dict[str, int]:
        """Records-behind per attached replica (watermark lag)."""
        last = self.database.wal.last_lsn
        return {
            link.replica.name: max(0, last - link.replica.applied_lsn)
            for link in self.links
        }

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "last_lsn": self.database.wal.last_lsn,
            "acked_lsn": self.acked_lsn,
            "links": [link.stats() for link in self.links],
            "mode": self.mode,
            "lease_expires_at": None if self.lease is None else self.lease.expires_at,
            "isolated_refusals": self.isolated_refusals,
        }


class ReplicaNode:
    """The standby side: applies the shipped log, keeps PMVs warm.

    The receive path tolerates a lossy link end-to-end: records are
    checksum-verified on decode, duplicates (at-least-once delivery)
    are ignored by LSN, out-of-order arrivals wait in a reorder buffer
    until the gap fills, and messages from a deposed epoch are rejected
    with :class:`~repro.errors.StaleEpochError` (counted by the link).
    """

    def __init__(
        self,
        name: str = "replica",
        buffer_pool_pages: int = 1000,
        page_size: int = 8192,
        database: Database | None = None,
        manager: PMVManager | None = None,
    ) -> None:
        self.name = name
        if database is None:
            database = Database(
                buffer_pool_pages=buffer_pool_pages,
                page_size=page_size,
                wal=WriteAheadLog(),
            )
        if database.wal is None:
            raise ReplicationError("a replica needs a local WAL to stay promotable")
        self.database = database
        self.manager = manager or PMVManager(database)
        self.epoch = 0
        self.applied_lsn = database.wal.last_lsn
        self.primary_watermark = self.applied_lsn
        self.pending: dict[int, object] = {}
        self.records_applied = 0
        self.duplicates_ignored = 0
        self.promoted = False

    @classmethod
    def from_snapshot(
        cls,
        snapshot_text: str,
        name: str = "replica",
        buffer_pool_pages: int = 1000,
        page_size: int | None = None,
    ) -> "ReplicaNode":
        """Bootstrap a standby from a primary checkpoint snapshot.

        The snapshot's checksum is verified on parse
        (:func:`~repro.engine.snapshot.snapshot_from_json`); the
        replica joins the stream at the checkpoint LSN — its local log
        is advanced so the first applied record gets the same LSN it
        has on the primary.
        """
        snapshot = snapshot_from_json(snapshot_text)
        wal = WriteAheadLog()
        database = restore_snapshot(
            snapshot,
            buffer_pool_pages=buffer_pool_pages,
            wal=wal,
            page_size=page_size,
        )
        wal.advance_to(snapshot["checkpoint_lsn"])
        node = cls(name=name, database=database)
        node.applied_lsn = snapshot["checkpoint_lsn"]
        node.primary_watermark = node.applied_lsn
        return node

    # -- the apply loop -------------------------------------------------------

    def observe_epoch(self, epoch: int) -> None:
        self.epoch = max(self.epoch, epoch)

    def receive(self, wire: str) -> int:
        """Accept one shipped message; returns how many records this
        delivery let the apply loop advance by (0 for a duplicate or a
        buffered out-of-order record)."""
        message = ShippedRecord.from_wire(wire)
        if message.epoch < self.epoch:
            raise StaleEpochError(
                f"{self.name}: rejected record from epoch {message.epoch} "
                f"(current epoch {self.epoch})"
            )
        self.epoch = message.epoch
        self.primary_watermark = max(self.primary_watermark, message.watermark)
        record = message.decode()  # CRC32 verified here, on the ship path
        if record.lsn <= self.applied_lsn:
            self.duplicates_ignored += 1
            return 0
        self.pending[record.lsn] = record
        return self._drain()

    def _drain(self) -> int:
        applied = 0
        while self.applied_lsn + 1 in self.pending:
            record = self.pending.pop(self.applied_lsn + 1)
            self._apply(record)
            self.applied_lsn = record.lsn
            self.records_applied += 1
            applied += 1
        return applied

    def _apply(self, record) -> None:
        if record.kind is LogKind.CHECKPOINT:
            # Pass the marker through to the local log so LSNs stay
            # aligned with the primary's (replay treats it as a no-op).
            self.database.wal.checkpoint()
        else:
            # The exact crash-recovery path; with the local WAL
            # attached, the statement re-logs itself under the same
            # LSN — the replica's log is the primary's continuation.
            replay_record(self.database, record)
        if self.database.wal.last_lsn != record.lsn:
            raise ReplicationError(
                f"{self.name}: local log drifted (applied LSN {record.lsn}, "
                f"local log at {self.database.wal.last_lsn})"
            )

    def note_watermark(self, lsn: int) -> None:
        """Advertise the primary's current end-of-log.

        Shipped records carry the watermark, but between pumps a
        replica would otherwise believe it is caught up simply because
        nothing told it about newer writes.  A router (or heartbeat
        piggyback) calls this so lag is honest against the freshest
        known primary position."""
        self.primary_watermark = max(self.primary_watermark, lsn)

    @property
    def lag(self) -> int:
        """Records behind the freshest known primary watermark."""
        return max(0, self.primary_watermark - self.applied_lsn)

    # -- serving --------------------------------------------------------------

    def serve(
        self,
        query,
        staleness_bound: int | None = None,
        txn=None,
        distinct: bool = False,
        deadline=None,
    ):
        """Answer a read on the standby under bounded staleness.

        Behind the watermark but within ``staleness_bound``: the answer
        is served from the replica's (possibly older) state and flagged
        ``complete=False, degraded_reason="replica_lag"`` — an honest
        subset of the primary's answer as of the applied LSN, never
        passed off as current.  Beyond the bound, the read is refused
        with :class:`~repro.errors.ReplicaLagError`.
        """
        lag = self.lag
        if staleness_bound is not None and lag > staleness_bound:
            raise ReplicaLagError(
                f"{self.name} is {lag} records behind (bound {staleness_bound})",
                lag=lag,
                bound=staleness_bound,
            )
        result = self.manager.execute(
            query, txn=txn, distinct=distinct, deadline=deadline
        )
        if lag > 0:
            result.complete = False
            result.degraded_reason = "replica_lag"
        return result

    # -- fleet mirroring and promotion ---------------------------------------

    def mirror_views(self, source) -> None:
        """Clone the primary's PMV fleet onto this standby.

        ``source`` is the primary's :class:`PMVManager` (or a
        ``view_specs()``-shaped dict).  Must run after the replica has
        applied the DDL that created the underlying relations.  The
        mirrored maintainers attach immediately, so every subsequently
        applied delta maintains the standby's cache.
        """
        specs = source.view_specs() if hasattr(source, "view_specs") else source
        for name, spec in specs.items():
            if name in set(self.manager.template_names()):
                continue
            self.manager.create_view(
                spec["template"],
                spec["discretization"],
                tuples_per_entry=spec["tuples_per_entry"],
                max_entries=spec["max_entries"],
                policy=spec["policy"],
                aux_index_columns=spec["aux_index_columns"],
                upper_bound_bytes=spec["upper_bound_bytes"],
                maintenance_strategy=spec["maintenance_strategy"],
                o1_cache_size=spec["o1_cache_size"],
                executor_options=spec["executor_options"],
                maintainer_options=spec["maintainer_options"],
            )

    def promote(
        self, epoch: int, clock: Callable[[], float] = time.monotonic
    ) -> PrimaryNode:
        """Become the primary for ``epoch``.

        Unapplied reorder-buffer records are discarded — they are
        beyond this node's contiguous history, and by the promotion
        rule (most-caught-up replica wins) nothing acknowledged can be
        among them.  Returns the :class:`PrimaryNode` wrapping this
        node's database and warm PMV fleet.
        """
        if epoch <= self.epoch and self.promoted:
            raise ReplicationError(f"{self.name} already promoted at epoch {self.epoch}")
        self.epoch = max(self.epoch, epoch)
        self.pending.clear()
        self.promoted = True
        return PrimaryNode(
            self.database,
            manager=self.manager,
            epoch=self.epoch,
            name=self.name,
            clock=clock,
        )

    def stats(self) -> dict:
        return {
            "name": self.name,
            "epoch": self.epoch,
            "applied_lsn": self.applied_lsn,
            "primary_watermark": self.primary_watermark,
            "lag": self.lag,
            "pending": len(self.pending),
            "records_applied": self.records_applied,
            "duplicates_ignored": self.duplicates_ignored,
            "promoted": self.promoted,
        }
