"""WAL-shipping replication with warm-standby PMVs (DESIGN.md §11).

The primary streams its checksummed write-ahead log over in-process,
fault-injectable links to replicas that apply it through the shared
crash-recovery replay path and keep mirrored PMV fleets warm; a
coordinator detects primary death by accumulated missed heartbeats,
fences the old epoch when reachable, promotes the most-caught-up
replica, and rewires the serving gate onto the survivor's warm cache.
Under lease-gated promotion (DESIGN.md §16) the primary holds a
coordinator-granted :class:`Lease` and self-isolates when it cannot
renew, so promotion never overlaps a still-serving deposed primary.
"""

from repro.replication.coordinator import FailoverCoordinator
from repro.replication.lease import ControlLink, Lease
from repro.replication.node import PrimaryNode, ReplicaNode
from repro.replication.ship import SHIP_SITE, ReplicationLink, ShippedRecord

__all__ = [
    "ControlLink",
    "FailoverCoordinator",
    "Lease",
    "PrimaryNode",
    "ReplicaNode",
    "ReplicationLink",
    "ShippedRecord",
    "SHIP_SITE",
]
