"""Failure detection and failover orchestration.

The :class:`FailoverCoordinator` watches the primary's heartbeats (the
primary calls :meth:`heartbeat_from` — usually via
:meth:`~repro.replication.node.PrimaryNode.heartbeat` — while alive;
the clock is injectable, so tests and the failover/nemesis benches
drive time explicitly).

**Failure detection** counts *consecutive missed heartbeat intervals*
with hysteresis rather than firing on a single silence sample: every
whole ``heartbeat_interval`` of silence adds one unit of suspicion
debt, every on-time heartbeat pays ``hysteresis`` units back, and the
primary is suspected only once debt plus the current silence reaches
``suspicion_threshold`` whole intervals.  One delayed heartbeat under
load therefore cannot trigger a spurious failover, and the
``misses``/``suspicions`` counters in :meth:`stats` make the
detector's behaviour observable.

Once suspected, :meth:`tick` runs the failover protocol:

1. **lease gate** — when lease-gated promotion is enabled
   (``lease_ttl``), promotion is *refused* until the last lease this
   coordinator granted has provably expired on the shared clock.  The
   old primary self-isolates when it cannot renew (ISOLATED mode, see
   :mod:`repro.replication.lease`), so by the time promotion is
   allowed the old primary has already stopped serving — closing the
   promote-while-zombie-serves window that fence-first alone leaves
   open for reads under an asymmetric partition;
2. **watermark gate** — promotion is also refused while the best
   candidate's applied LSN does not cover the last acknowledged
   watermark this coordinator recorded from the primary's heartbeats:
   promoting a lagging replica would silently drop acked writes;
3. **fence** — *best effort*: the new epoch is stamped into the old
   primary's WAL (:meth:`~repro.engine.wal.WriteAheadLog.fence`) when
   the primary is reachable (``primary_reachable`` hook); under a
   partition the fence is skipped and the expired lease is what
   guarantees the old primary stopped.  Stale-epoch ships are rejected
   by every replica's epoch check either way;
4. **promote** — the most-caught-up replica becomes the primary for
   the bumped epoch and (when lease-gated) receives a fresh lease;
5. **rechain** — surviving replicas are attached to the new primary;
6. **rewire** — the :class:`~repro.qos.gate.ServingGate`, when one is
   registered, is rebound to the promoted fleet (the governor restores
   configured UBs first), and the new primary's lease check replaces
   the old one on the gate.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ReplicationError
from repro.replication.lease import Lease
from repro.replication.node import PrimaryNode, ReplicaNode

__all__ = ["FailoverCoordinator"]


class FailoverCoordinator:
    """Detects primary death and promotes the best replica."""

    def __init__(
        self,
        primary: PrimaryNode,
        replicas: list[ReplicaNode],
        gate=None,
        heartbeat_interval: float = 1.0,
        missed_heartbeats: int = 3,
        suspicion_threshold: int | None = None,
        hysteresis: int = 1,
        lease_ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not replicas:
            raise ReplicationError("failover needs at least one replica")
        self.primary = primary
        self.replicas = list(replicas)
        self.gate = gate
        self.heartbeat_interval = heartbeat_interval
        self.missed_heartbeats = missed_heartbeats
        # ``missed_heartbeats`` predates the suspicion counter and keeps
        # working as its default — existing configs see no change.
        self.suspicion_threshold = (
            missed_heartbeats if suspicion_threshold is None else suspicion_threshold
        )
        if self.suspicion_threshold < 1:
            raise ReplicationError("suspicion_threshold must be >= 1")
        self.hysteresis = max(0, hysteresis)
        self.lease_ttl = lease_ttl
        self._clock = clock
        self._last_heartbeat = clock()
        self._debt = 0  # accumulated missed intervals (hysteresis state)
        self._counted_since_hb = 0
        self._was_suspected = False
        self.misses = 0
        self.suspicions = 0
        self.failovers = 0
        self.promotions_refused_lease = 0
        self.promotions_refused_watermark = 0
        self.fences_skipped = 0
        self.stale_heartbeats = 0
        self.last_refusal: str | None = None
        self.epoch_history: list[int] = [primary.epoch]
        self._failover_listeners: list[Callable[[PrimaryNode], None]] = []
        # The coordinator's last recorded view of the primary's
        # semi-sync watermark — what the watermark gate promotes
        # against when the primary itself is unreachable.
        self._recorded_acked_lsn = primary.acked_lsn
        self._lease_expiry = clock()
        self.primary_reachable: Callable[[], bool] | None = None
        if self.lease_ttl is not None:
            primary.adopt_lease(self._mint_lease(primary.epoch))
            if gate is not None:
                primary.bind_gate(gate)

    def add_failover_listener(self, listener: Callable[[PrimaryNode], None]) -> None:
        """Subscribe to promotions: called with the new primary after
        the gate is rebound (the network front-end rebuilds its dedup
        table from the promoted WAL here)."""
        self._failover_listeners.append(listener)

    # -- failure detection ----------------------------------------------------

    def _observe_silence(self) -> int:
        """Whole heartbeat intervals of silence, with the ``misses``
        counter advanced for any not yet counted."""
        silence = self._clock() - self._last_heartbeat
        whole = max(0, int(silence // self.heartbeat_interval))
        if whole > self._counted_since_hb:
            self.misses += whole - self._counted_since_hb
            self._counted_since_hb = whole
        return whole

    def notify_heartbeat(self, acked_lsn: int | None = None) -> None:
        """Record one heartbeat arrival from the current primary.

        An on-time arrival pays ``hysteresis`` units of suspicion debt
        back; a late one banks its missed intervals as debt, so a
        primary that keeps arriving late accumulates suspicion even
        though no single gap reaches the threshold on its own.
        """
        whole = self._observe_silence()
        self._debt = max(0, self._debt + whole - self.hysteresis)
        self._counted_since_hb = 0
        self._last_heartbeat = self._clock()
        if self._debt < self.suspicion_threshold:
            self._was_suspected = False
        if acked_lsn is not None:
            self._recorded_acked_lsn = max(self._recorded_acked_lsn, acked_lsn)

    def heartbeat_from(self, primary: PrimaryNode) -> Lease | None:
        """Accept a heartbeat from ``primary``; returns the renewed
        lease (None when lease gating is off, or when the caller is a
        deposed primary — which must *not* have its lease renewed)."""
        if primary is not self.primary:
            self.stale_heartbeats += 1
            return None
        self.notify_heartbeat(acked_lsn=primary.acked_lsn)
        if self.lease_ttl is None:
            return None
        lease = self._mint_lease(primary.epoch)
        return lease

    def _mint_lease(self, epoch: int) -> Lease:
        now = self._clock()
        lease = Lease(epoch=epoch, granted_at=now, expires_at=now + self.lease_ttl)
        self._lease_expiry = max(self._lease_expiry, lease.expires_at)
        return lease

    def primary_suspected(self) -> bool:
        """Whether accumulated suspicion reaches the threshold."""
        whole = self._observe_silence()
        suspected = self._debt + whole >= self.suspicion_threshold
        if suspected and not self._was_suspected:
            self.suspicions += 1
            self._was_suspected = True
        return suspected

    def tick(self) -> PrimaryNode | None:
        """Run one detection step; fails over if the primary is dead.

        Returns the new primary when a failover happened, else None —
        including when the primary is suspected but promotion is still
        refused by the lease or watermark gate (``stats()`` says why).
        """
        if not self.primary_suspected():
            return None
        return self.failover()

    # -- the failover protocol ------------------------------------------------

    def failover(self) -> PrimaryNode | None:
        """Fence (best effort), promote the best safe replica, rewire.

        Returns None when promotion is refused: the old lease has not
        provably expired yet, or no candidate's watermark covers the
        recorded acked LSN.  Refusal is the safe state — a suspected
        primary may be merely partitioned, and promoting early is how
        acked writes get lost or two eras serve at once.
        """
        now = self._clock()
        if self.lease_ttl is not None and now < self._lease_expiry:
            self.promotions_refused_lease += 1
            self.last_refusal = (
                f"lease valid until {self._lease_expiry:.3f} (now {now:.3f})"
            )
            return None
        if not self.replicas:
            self.promotions_refused_watermark += 1
            self.last_refusal = "no standby left to promote"
            return None
        candidate = max(self.replicas, key=lambda replica: replica.applied_lsn)
        if candidate.applied_lsn < self._recorded_acked_lsn:
            self.promotions_refused_watermark += 1
            self.last_refusal = (
                f"best candidate {candidate.name} at LSN {candidate.applied_lsn} "
                f"< acked watermark {self._recorded_acked_lsn}"
            )
            return None
        self.last_refusal = None
        new_epoch = self.primary.epoch + 1
        # Fence when reachable: from that instant the deposed primary
        # can neither append (WALFencedError) nor mutate.  Unreachable
        # under a partition, the fence is skipped — the expired lease
        # already made the old primary refuse service (ISOLATED).
        if self.primary_reachable is None or self.primary_reachable():
            self.primary.database.wal.fence(new_epoch)
        else:
            self.fences_skipped += 1
        new_primary = candidate.promote(new_epoch, clock=self._clock)
        for replica in self.replicas:
            if replica is not candidate:
                new_primary.attach_replica(replica)
        self.replicas = [r for r in self.replicas if r is not candidate]
        if self.gate is not None:
            self.gate.rebind(new_primary.manager)
        self.primary = new_primary
        self.failovers += 1
        self.epoch_history.append(new_epoch)
        self._recorded_acked_lsn = new_primary.acked_lsn
        if self.lease_ttl is not None:
            new_primary.adopt_lease(self._mint_lease(new_epoch))
            if self.gate is not None:
                new_primary.bind_gate(self.gate)
        self._reset_suspicion()  # the new primary starts with a fresh budget
        for listener in self._failover_listeners:
            listener(new_primary)
        return new_primary

    def _reset_suspicion(self) -> None:
        self._last_heartbeat = self._clock()
        self._debt = 0
        self._counted_since_hb = 0
        self._was_suspected = False

    def stats(self) -> dict:
        return {
            "epoch": self.primary.epoch,
            "failovers": self.failovers,
            "epoch_history": list(self.epoch_history),
            "primary": self.primary.name,
            "primary_mode": self.primary.mode,
            "replicas": [replica.stats() for replica in self.replicas],
            "suspected": self.primary_suspected(),
            "suspicion_debt": self._debt,
            "suspicion_threshold": self.suspicion_threshold,
            "misses": self.misses,
            "suspicions": self.suspicions,
            "lease_ttl": self.lease_ttl,
            "lease_expiry": self._lease_expiry if self.lease_ttl is not None else None,
            "recorded_acked_lsn": self._recorded_acked_lsn,
            "promotions_refused_lease": self.promotions_refused_lease,
            "promotions_refused_watermark": self.promotions_refused_watermark,
            "fences_skipped": self.fences_skipped,
            "stale_heartbeats": self.stale_heartbeats,
            "last_refusal": self.last_refusal,
        }
