"""Failure detection and failover orchestration.

The :class:`FailoverCoordinator` watches the primary's heartbeats (the
primary calls :meth:`notify_heartbeat` while alive; the clock is
injectable, so tests and the failover bench drive time explicitly).
After ``missed_heartbeats`` intervals of silence, :meth:`tick` declares
the primary dead and runs the failover protocol:

1. **fence** — the new epoch is stamped into the old primary's WAL
   (:meth:`~repro.engine.wal.WriteAheadLog.fence`), so a zombie that
   was merely slow can no longer mutate or acknowledge anything; its
   ships are additionally rejected by every replica's epoch check;
2. **promote** — the most-caught-up replica (highest applied LSN)
   becomes the primary for the bumped epoch.  Because a write counts
   as acknowledged only once some replica applied it (semi-sync, see
   :attr:`~repro.replication.node.PrimaryNode.acked_lsn`), the winner
   necessarily holds every acknowledged write;
3. **rechain** — surviving replicas are attached to the new primary,
   which ships them its log tail (their watermark-based links resume
   exactly where they were);
4. **rewire** — the :class:`~repro.qos.gate.ServingGate`, when one is
   registered, is rebound to the promoted fleet.  The governor adopts
   the new views and restores their configured UBs first, so a
   promotion that happens mid-DEGRADED never serves through the dead
   primary's shrunken budgets (the warm cache is the point of the
   standby).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ReplicationError
from repro.replication.node import PrimaryNode, ReplicaNode

__all__ = ["FailoverCoordinator"]


class FailoverCoordinator:
    """Detects primary death and promotes the best replica."""

    def __init__(
        self,
        primary: PrimaryNode,
        replicas: list[ReplicaNode],
        gate=None,
        heartbeat_interval: float = 1.0,
        missed_heartbeats: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not replicas:
            raise ReplicationError("failover needs at least one replica")
        self.primary = primary
        self.replicas = list(replicas)
        self.gate = gate
        self.heartbeat_interval = heartbeat_interval
        self.missed_heartbeats = missed_heartbeats
        self._clock = clock
        self._last_heartbeat = clock()
        self.failovers = 0
        self.epoch_history: list[int] = [primary.epoch]
        self._failover_listeners: list[Callable[[PrimaryNode], None]] = []

    def add_failover_listener(self, listener: Callable[[PrimaryNode], None]) -> None:
        """Subscribe to promotions: called with the new primary after
        the gate is rebound (the network front-end rebuilds its dedup
        table from the promoted WAL here)."""
        self._failover_listeners.append(listener)

    # -- failure detection ----------------------------------------------------

    def notify_heartbeat(self) -> None:
        self._last_heartbeat = self._clock()

    def primary_suspected(self) -> bool:
        """Whether the primary has missed its heartbeat budget."""
        silence = self._clock() - self._last_heartbeat
        return silence >= self.heartbeat_interval * self.missed_heartbeats

    def tick(self) -> PrimaryNode | None:
        """Run one detection step; fails over if the primary is dead.

        Returns the new primary when a failover happened, else None.
        """
        if not self.primary_suspected():
            return None
        return self.failover()

    # -- the failover protocol ------------------------------------------------

    def failover(self) -> PrimaryNode:
        """Fence the old primary, promote the best replica, rewire."""
        new_epoch = self.primary.epoch + 1
        # Fence first: from this instant the deposed primary can neither
        # append (WALFencedError) nor mutate (Database._check_fence).
        self.primary.database.wal.fence(new_epoch)
        candidate = max(self.replicas, key=lambda replica: replica.applied_lsn)
        new_primary = candidate.promote(new_epoch)
        for replica in self.replicas:
            if replica is not candidate:
                new_primary.attach_replica(replica)
        self.replicas = [r for r in self.replicas if r is not candidate]
        if self.gate is not None:
            self.gate.rebind(new_primary.manager)
        self.primary = new_primary
        self.failovers += 1
        self.epoch_history.append(new_epoch)
        self.notify_heartbeat()  # the new primary starts with a fresh budget
        for listener in self._failover_listeners:
            listener(new_primary)
        return new_primary

    def stats(self) -> dict:
        return {
            "epoch": self.primary.epoch,
            "failovers": self.failovers,
            "epoch_history": list(self.epoch_history),
            "primary": self.primary.name,
            "replicas": [replica.stats() for replica in self.replicas],
            "suspected": self.primary_suspected(),
        }
