"""Query-stream generators for the experiments.

Two kinds of streams:

- :class:`ControlledQueryFactory` reproduces Section 4.2's setup: each
  query's ``Cselect`` breaks into exactly ``h`` basic condition parts,
  one of which is a designated *hot* cell (resident in the PMV), the
  rest cold.  ``h`` is the template's combination factor — the product
  of the per-slot disjunct counts — so ``h`` is factored across the
  slots (e.g. h=6 on T1 → 2 dates × 3 suppliers).
- :class:`ZipfianQueryStream` draws each slot's disjunct values from a
  per-slot Zipfian distribution, the natural skewed workload for the
  examples and integration tests.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.engine.predicate import EqualityDisjunction
from repro.engine.template import Query, QueryTemplate
from repro.errors import WorkloadError
from repro.workload.zipf import ZipfianDistribution

__all__ = ["factorize", "ControlledQueryFactory", "ZipfianQueryStream"]


def factorize(h: int, dimensions: int) -> tuple[int, ...]:
    """Split a combination factor ``h`` into ``dimensions`` per-slot
    disjunct counts whose product is ``h``, as balanced as possible.

    Larger factors go to earlier slots, so a template with extra
    trailing slots (T2 vs T1) splits its leading dimensions the same
    way T1 does at equal h.

    >>> factorize(6, 2)
    (3, 2)
    >>> factorize(7, 2)
    (7, 1)
    >>> factorize(8, 3)
    (2, 2, 2)
    """
    if h < 1 or dimensions < 1:
        raise WorkloadError("h and dimensions must be >= 1")
    if dimensions == 1:
        return (h,)
    best: tuple[int, ...] | None = None
    for first in range(1, h + 1):
        if h % first:
            continue
        rest = factorize(h // first, dimensions - 1)
        candidate = (first,) + rest
        if best is None or max(candidate) < max(best):
            best = candidate
    assert best is not None
    return tuple(sorted(best, reverse=True))


class ControlledQueryFactory:
    """Builds queries with a known hot/cold cell composition.

    Parameters
    ----------
    template:
        An all-equality-slot template (T1 or T2 shaped).
    domains:
        One value domain per slot, in slot order (e.g. the distinct
        order dates, the supplier keys, the nation keys).
    seed:
        Seed for cold-value sampling.
    """

    def __init__(
        self,
        template: QueryTemplate,
        domains: Sequence[Sequence[Any]],
        seed: int | None = None,
    ) -> None:
        if len(domains) != template.arity:
            raise WorkloadError(
                f"need {template.arity} domains, got {len(domains)}"
            )
        for i, domain in enumerate(domains):
            if len(domain) < 2:
                raise WorkloadError(f"domain {i} needs at least 2 values")
        self.template = template
        self.domains = [list(d) for d in domains]
        self._rng = np.random.default_rng(seed)

    def hot_cell(self) -> tuple[Any, ...]:
        """A canonical hot cell: the first value of every domain."""
        return tuple(domain[0] for domain in self.domains)

    def query(self, h: int, hot: tuple[Any, ...] | None = None) -> Query:
        """A query whose ``Cselect`` breaks into exactly ``h`` basic
        condition parts, including the cell ``hot`` (defaulting to
        :meth:`hot_cell`) — the Section 4.2 construction where "one of
        these h basic condition parts exists in the PMV".
        """
        hot = hot if hot is not None else self.hot_cell()
        if len(hot) != self.template.arity:
            raise WorkloadError("hot cell arity does not match template")
        counts = factorize(h, self.template.arity)
        conditions = []
        for slot, domain, count, hot_value in zip(
            self.template.slots, self.domains, counts, hot
        ):
            if count > len(domain):
                raise WorkloadError(
                    f"h={h} needs {count} values in domain of {slot.column!r}, "
                    f"which has only {len(domain)}"
                )
            values = [hot_value]
            pool = [v for v in domain if v != hot_value]
            extra = self._rng.choice(len(pool), size=count - 1, replace=False)
            values.extend(pool[int(i)] for i in extra)
            conditions.append(EqualityDisjunction(slot.column, values))
        return self.template.bind(conditions)


class ZipfianQueryStream:
    """An endless stream of skewed template queries.

    Each slot draws its disjunct values (without replacement) from a
    Zipfian distribution over that slot's domain, so some cells are hot
    across the stream — the access pattern PMVs exploit.
    """

    def __init__(
        self,
        template: QueryTemplate,
        domains: Sequence[Sequence[Any]],
        alpha: float = 1.07,
        values_per_slot: Sequence[int] | None = None,
        seed: int | None = None,
    ) -> None:
        if len(domains) != template.arity:
            raise WorkloadError(f"need {template.arity} domains")
        self.template = template
        self.domains = [list(d) for d in domains]
        if values_per_slot is None:
            values_per_slot = [2] * template.arity
        if len(values_per_slot) != template.arity:
            raise WorkloadError("values_per_slot length must match arity")
        for count, domain in zip(values_per_slot, self.domains):
            if not 1 <= count <= len(domain):
                raise WorkloadError("values_per_slot out of domain range")
        self.values_per_slot = list(values_per_slot)
        seeds = np.random.SeedSequence(seed).spawn(template.arity)
        self._dists = [
            ZipfianDistribution(len(domain), alpha, seed=int(s.generate_state(1)[0]))
            for domain, s in zip(self.domains, seeds)
        ]

    def next_query(self) -> Query:
        """Draw the next skewed query."""
        conditions = []
        for slot, domain, dist, count in zip(
            self.template.slots, self.domains, self._dists, self.values_per_slot
        ):
            picked: list[int] = []
            # Rejection-sample distinct ids; domains are much larger
            # than `count`, so this terminates quickly.
            while len(picked) < count:
                candidate = dist.sample_one()
                if candidate not in picked:
                    picked.append(candidate)
            conditions.append(
                EqualityDisjunction(slot.column, [domain[i] for i in picked])
            )
        return self.template.bind(conditions)

    def queries(self, n: int) -> list[Query]:
        return [self.next_query() for _ in range(n)]
