"""TPC-R-like data generator (Section 4.2, Table 1).

Reproduces the paper's test data set: ``customer``, ``orders``, and
``lineitem`` relations with the TPC-R row ratios —

====================  =====================  ==================
relation              paper rows (scale s)   row ratio
====================  =====================  ==================
customer              0.15 × s M             1
orders                1.5  × s M             10 per customer
lineitem              6    × s M             4 per order
====================  =====================  ==================

A linear ``downscale`` (default 1,000) shrinks absolute counts to
laptop scale while keeping every ratio, matching rule, and per-tuple
size intact; ``downscale=1`` regenerates the paper's full-size tables.
Filler comment columns pad average tuple sizes to the paper's
~153/76/126 bytes so Table 1's total sizes reproduce proportionally.

Generation is fully deterministic for a given seed.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

import numpy as np

from repro.engine.database import Database
from repro.engine.datatypes import DATE, FLOAT, INTEGER, TEXT
from repro.engine.schema import Column
from repro.errors import WorkloadError

__all__ = ["TPCRConfig", "TPCRDataset", "load_tpcr", "table1_rows"]

# Paper Table 1 per-tuple byte sizes, derived from "total size / rows".
CUSTOMER_TUPLE_BYTES = 153
ORDERS_TUPLE_BYTES = 76
LINEITEM_TUPLE_BYTES = 126


@dataclass(frozen=True)
class TPCRConfig:
    """Knobs for the generator.

    ``scale_factor`` is the paper's ``s``; ``downscale`` divides the
    paper's absolute row counts (1,000 by default → s=1 gives 150
    customers, 1,500 orders, 6,000 lineitems).
    """

    scale_factor: float = 1.0
    downscale: int = 1000
    seed: int = 42
    distinct_order_dates: int = 366
    suppliers: int = 100
    nations: int = 25
    orders_per_customer: int = 10
    lineitems_per_order: int = 4
    start_date: str = "1994-01-01"

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise WorkloadError("scale_factor must be positive")
        if self.downscale < 1:
            raise WorkloadError("downscale must be >= 1")
        if min(self.distinct_order_dates, self.suppliers, self.nations) < 1:
            raise WorkloadError("distinct values must be >= 1")

    @property
    def customers(self) -> int:
        return max(1, round(150_000 * self.scale_factor / self.downscale))

    @property
    def orders(self) -> int:
        return self.customers * self.orders_per_customer

    @property
    def lineitems(self) -> int:
        return self.orders * self.lineitems_per_order

    def order_dates(self) -> list[str]:
        """The distinct orderdate domain, as ISO strings."""
        base = _dt.date.fromisoformat(self.start_date)
        return [
            (base + _dt.timedelta(days=i)).isoformat()
            for i in range(self.distinct_order_dates)
        ]


@dataclass
class TPCRDataset:
    """What :func:`load_tpcr` produced: the config plus per-table stats."""

    config: TPCRConfig
    row_counts: dict[str, int] = field(default_factory=dict)
    byte_sizes: dict[str, int] = field(default_factory=dict)

    def total_megabytes(self, relation: str) -> float:
        return self.byte_sizes[relation] / 1e6


def _filler(rng: np.random.Generator, length: int) -> str:
    """Deterministic padding text of ``length`` characters."""
    letters = rng.integers(ord("a"), ord("z") + 1, size=length)
    return "".join(chr(c) for c in letters)


def load_tpcr(database: Database, config: TPCRConfig | None = None) -> TPCRDataset:
    """Create and populate the three TPC-R-like relations.

    Builds an index on each selection/join attribute, exactly the
    physical design of Section 4.2: ``customer(custkey, nationkey)``,
    ``orders(orderkey, custkey, orderdate)``,
    ``lineitem(orderkey, suppkey)``.
    """
    config = config or TPCRConfig()
    rng = np.random.default_rng(config.seed)

    database.create_relation(
        "customer",
        [
            Column("custkey", INTEGER, nullable=False),
            Column("nationkey", INTEGER, nullable=False),
            Column("name", TEXT),
            Column("acctbal", FLOAT),
            Column("comment", TEXT),
        ],
    )
    database.create_relation(
        "orders",
        [
            Column("orderkey", INTEGER, nullable=False),
            Column("custkey", INTEGER, nullable=False),
            Column("orderdate", DATE, nullable=False),
            Column("totalprice", FLOAT),
            Column("comment", TEXT),
        ],
    )
    database.create_relation(
        "lineitem",
        [
            Column("orderkey", INTEGER, nullable=False),
            Column("suppkey", INTEGER, nullable=False),
            Column("linenumber", INTEGER, nullable=False),
            Column("quantity", FLOAT),
            Column("extendedprice", FLOAT),
            Column("comment", TEXT),
        ],
    )

    dates = config.order_dates()
    dataset = TPCRDataset(config=config)

    # -- customer --------------------------------------------------------------
    customer_rows = []
    nation_choices = rng.integers(0, config.nations, size=config.customers)
    acctbals = rng.uniform(-999.99, 9999.99, size=config.customers)
    for custkey in range(1, config.customers + 1):
        name = f"Customer#{custkey:09d}"
        pad = CUSTOMER_TUPLE_BYTES - (4 + 4 + len(name) + 8) - 8
        customer_rows.append(
            (
                custkey,
                int(nation_choices[custkey - 1]),
                name,
                round(float(acctbals[custkey - 1]), 2),
                _filler(rng, max(4, pad)),
            )
        )

    # -- orders -----------------------------------------------------------------
    orders_rows = []
    date_choices = rng.integers(0, len(dates), size=config.orders)
    prices = rng.uniform(100.0, 500000.0, size=config.orders)
    for orderkey in range(1, config.orders + 1):
        # Each customer owns orders_per_customer consecutive orders.
        custkey = (orderkey - 1) % config.customers + 1
        pad = ORDERS_TUPLE_BYTES - (4 + 4 + 10 + 8) - 8
        orders_rows.append(
            (
                orderkey,
                custkey,
                dates[int(date_choices[orderkey - 1])],
                round(float(prices[orderkey - 1]), 2),
                _filler(rng, max(4, pad)),
            )
        )

    # -- lineitem ----------------------------------------------------------------
    lineitem_rows = []
    supp_choices = rng.integers(1, config.suppliers + 1, size=config.lineitems)
    quantities = rng.integers(1, 51, size=config.lineitems)
    ext_prices = rng.uniform(900.0, 105000.0, size=config.lineitems)
    i = 0
    for orderkey in range(1, config.orders + 1):
        for linenumber in range(1, config.lineitems_per_order + 1):
            pad = LINEITEM_TUPLE_BYTES - (4 + 4 + 4 + 8 + 8) - 8
            lineitem_rows.append(
                (
                    orderkey,
                    int(supp_choices[i]),
                    linenumber,
                    float(quantities[i]),
                    round(float(ext_prices[i]), 2),
                    _filler(rng, max(4, pad)),
                )
            )
            i += 1

    for name, rows in (
        ("customer", customer_rows),
        ("orders", orders_rows),
        ("lineitem", lineitem_rows),
    ):
        database.insert_many(name, rows)
        relation = database.catalog.relation(name)
        dataset.row_counts[name] = relation.row_count
        dataset.byte_sizes[name] = sum(row.byte_size() for row in relation.scan_rows())

    # Indexes on every selection/join attribute (Section 4.2).
    database.create_index("customer_custkey", "customer", ["custkey"])
    database.create_index("customer_nationkey", "customer", ["nationkey"])
    database.create_index("orders_orderkey", "orders", ["orderkey"])
    database.create_index("orders_custkey", "orders", ["custkey"])
    database.create_index("orders_orderdate", "orders", ["orderdate"], ordered=True)
    database.create_index("lineitem_orderkey", "lineitem", ["orderkey"])
    database.create_index("lineitem_suppkey", "lineitem", ["suppkey"])
    return dataset


def table1_rows(scale_factor: float, downscale: int = 1) -> list[dict[str, float]]:
    """The paper's Table 1, parameterized by scale factor.

    Returns one dict per relation with the expected tuple count and
    total size in MB (at ``downscale=1``, the paper's own numbers:
    0.15/1.5/6 M tuples and 23/114/755 MB at s=1).
    """
    config = TPCRConfig(scale_factor=scale_factor, downscale=downscale)
    per_tuple = {
        "customer": CUSTOMER_TUPLE_BYTES,
        "orders": ORDERS_TUPLE_BYTES,
        "lineitem": LINEITEM_TUPLE_BYTES,
    }
    counts = {
        "customer": config.customers,
        "orders": config.orders,
        "lineitem": config.lineitems,
    }
    return [
        {
            "relation": name,
            "tuples": counts[name],
            "megabytes": counts[name] * per_tuple[name] / 1e6,
        }
        for name in ("customer", "orders", "lineitem")
    ]
