"""``repro.workload`` — data and query generators: Zipfian access
distributions, the TPC-R-like dataset of Table 1, the paper's T1/T2/Eqt
templates, and controlled/skewed query streams."""

from repro.workload.queries import ControlledQueryFactory, ZipfianQueryStream, factorize
from repro.workload.templates import (
    T1_SELECT_LIST,
    T2_SELECT_LIST,
    equality_discretization,
    make_eqt,
    make_t1,
    make_t2,
)
from repro.workload.trace import QueryTrace, QueryTraceRecorder
from repro.workload.tpcr import (
    CUSTOMER_TUPLE_BYTES,
    LINEITEM_TUPLE_BYTES,
    ORDERS_TUPLE_BYTES,
    TPCRConfig,
    TPCRDataset,
    load_tpcr,
    table1_rows,
)
from repro.workload.zipf import ZipfianDistribution

__all__ = [
    "CUSTOMER_TUPLE_BYTES",
    "ControlledQueryFactory",
    "LINEITEM_TUPLE_BYTES",
    "ORDERS_TUPLE_BYTES",
    "T1_SELECT_LIST",
    "T2_SELECT_LIST",
    "QueryTrace",
    "QueryTraceRecorder",
    "TPCRConfig",
    "TPCRDataset",
    "ZipfianDistribution",
    "ZipfianQueryStream",
    "equality_discretization",
    "factorize",
    "load_tpcr",
    "make_eqt",
    "make_t1",
    "make_t2",
    "table1_rows",
]
