"""Zipfian access distributions (Section 4.1).

The simulation study draws each basic condition part of a query's
``Cselect`` from a Zipfian distribution over the 1 M cells of the query
space: ``e_i ∝ 1 / i^α``.  The paper characterizes its two settings by
mass concentration — α = 1.07 means 10 % of the cells receive 90 % of
the references, α = 1.01 means 21 % do — which
:meth:`ZipfianDistribution.coverage_fraction` reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ZipfianDistribution"]


class ZipfianDistribution:
    """A Zipf(α) distribution over item ids ``0 … n-1``.

    Rank 1 (the hottest item) is id 0.  Sampling uses inverse-CDF
    lookups on a precomputed cumulative table, so drawing millions of
    ids is vectorized.

    Parameters
    ----------
    n:
        Number of items.
    alpha:
        Skew parameter α (> 0); larger is more skewed.
    seed:
        Seed for the internal :class:`numpy.random.Generator`.
    """

    def __init__(self, n: int, alpha: float, seed: int | None = None) -> None:
        if n < 1:
            raise WorkloadError("n must be >= 1")
        if alpha <= 0:
            raise WorkloadError("alpha must be positive")
        self.n = n
        self.alpha = alpha
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        total = weights.sum()
        self.probabilities = weights / total
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0  # guard against floating-point shortfall
        self._rng = np.random.default_rng(seed)

    # -- sampling ---------------------------------------------------------------

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item ids (dtype int64)."""
        if size < 0:
            raise WorkloadError("size must be non-negative")
        u = self._rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    # -- characterization -----------------------------------------------------------

    def probability(self, item: int) -> float:
        """The access probability e_i of item id ``item``."""
        if not 0 <= item < self.n:
            raise WorkloadError(f"item {item} out of range")
        return float(self.probabilities[item])

    def coverage_fraction(self, mass: float) -> float:
        """Smallest fraction of items (hottest first) covering ``mass``
        of the probability.  E.g. α = 1.07 over 1 M items →
        coverage_fraction(0.9) ≈ 0.10 (the paper's "10 % get 90 %")."""
        if not 0.0 < mass <= 1.0:
            raise WorkloadError("mass must be in (0, 1]")
        count = int(np.searchsorted(self._cdf, mass, side="left")) + 1
        return min(count, self.n) / self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ZipfianDistribution(n={self.n}, alpha={self.alpha})"
