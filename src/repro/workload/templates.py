"""The paper's query templates over the TPC-R-like schema.

- :func:`make_t1`: Section 4.2's T1 — lineitems by supplier and order
  date (``orders ⋈ lineitem``);
- :func:`make_t2`: T2 — additionally restricted to customer nations
  (``orders ⋈ lineitem ⋈ customer``);
- :func:`make_eqt`: the introduction's generic two-relation template
  Eqt (Figure 1) over caller-supplied relations, used by tests and
  examples.

Each ``make_*`` returns the template; pair it with a
:class:`~repro.core.discretize.Discretization` (all slots here are
equality-form, so an empty discretization suffices).
"""

from __future__ import annotations

from repro.core.discretize import Discretization
from repro.engine.predicate import JoinEquality
from repro.engine.template import QueryTemplate, SelectionSlot, SlotForm

__all__ = ["make_t1", "make_t2", "make_eqt", "T1_SELECT_LIST", "T2_SELECT_LIST"]

T1_SELECT_LIST = (
    "orders.orderkey",
    "orders.custkey",
    "orders.orderdate",
    "orders.totalprice",
    "lineitem.suppkey",
    "lineitem.linenumber",
    "lineitem.quantity",
    "lineitem.extendedprice",
)
"""T1's ``select *`` (minus the filler comments, which only pad size)."""

T2_SELECT_LIST = T1_SELECT_LIST + (
    "customer.custkey",
    "customer.nationkey",
    "customer.name",
    "customer.acctbal",
)
"""T2's ``select *`` across all three relations."""


def make_t1(name: str = "T1", select_list: tuple[str, ...] = T1_SELECT_LIST) -> QueryTemplate:
    """T1: lineitems whose parts were provided by certain suppliers and
    sold on certain days.  Basic condition parts are (d_i, s_j) pairs."""
    return QueryTemplate(
        name=name,
        relations=("orders", "lineitem"),
        select_list=select_list,
        joins=(JoinEquality("orders", "orderkey", "lineitem", "orderkey"),),
        slots=(
            SelectionSlot("orders", "orders.orderdate", SlotForm.EQUALITY),
            SelectionSlot("lineitem", "lineitem.suppkey", SlotForm.EQUALITY),
        ),
    )


def make_t2(name: str = "T2", select_list: tuple[str, ...] = T2_SELECT_LIST) -> QueryTemplate:
    """T2: T1 further restricted to customers of certain nations.
    Basic condition parts are (d_i, s_j, n_k) triples."""
    return QueryTemplate(
        name=name,
        relations=("orders", "lineitem", "customer"),
        select_list=select_list,
        joins=(
            JoinEquality("orders", "orderkey", "lineitem", "orderkey"),
            JoinEquality("orders", "custkey", "customer", "custkey"),
        ),
        slots=(
            SelectionSlot("orders", "orders.orderdate", SlotForm.EQUALITY),
            SelectionSlot("lineitem", "lineitem.suppkey", SlotForm.EQUALITY),
            SelectionSlot("customer", "customer.nationkey", SlotForm.EQUALITY),
        ),
    )


def make_eqt(
    left: str = "r",
    right: str = "s",
    join_left: str = "c",
    join_right: str = "d",
    slot_left: str = "f",
    slot_right: str = "g",
    select_list: tuple[str, ...] | None = None,
    name: str = "Eqt",
) -> QueryTemplate:
    """Figure 1's generic template over two caller-named relations."""
    if select_list is None:
        select_list = (f"{left}.a", f"{right}.e")
    return QueryTemplate(
        name=name,
        relations=(left, right),
        select_list=select_list,
        joins=(JoinEquality(left, join_left, right, join_right),),
        slots=(
            SelectionSlot(left, f"{left}.{slot_left}", SlotForm.EQUALITY),
            SelectionSlot(right, f"{right}.{slot_right}", SlotForm.EQUALITY),
        ),
    )


def equality_discretization(template: QueryTemplate) -> Discretization:
    """Discretization for an all-equality template (no grids needed)."""
    return Discretization(template)
