"""Query-trace recording and replay.

Section 3.1 suggests learning dividing values "from query traces"; this
module supplies the trace machinery: a :class:`QueryTraceRecorder`
captures every bound query against a template (wrap any query source,
or attach to a stream), a :class:`QueryTrace` summarizes the observed
predicate values — the input :func:`~repro.core.discretize.learn_dividing_values`
wants — and replays the exact workload against an executor, e.g. to
compare PMV configurations on a recorded production day.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.engine.predicate import EqualityDisjunction, IntervalDisjunction
from repro.engine.template import Query, QueryTemplate
from repro.errors import WorkloadError

__all__ = ["QueryTrace", "QueryTraceRecorder"]


@dataclass
class QueryTrace:
    """An ordered record of bound queries from one template."""

    template: QueryTemplate
    queries: list[Query] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    # -- analysis --------------------------------------------------------------

    def observed_values(self, column: str) -> list[Any]:
        """Every predicate value/endpoint observed for ``column``.

        Equality conditions contribute their disjunct values; interval
        conditions contribute both endpoints of every interval (the
        from/to values form-based applications expose) — exactly the
        observations the discretization learner consumes.
        """
        index = self.template.slot_index(column)
        out: list[Any] = []
        for query in self.queries:
            condition = query.cselect.conditions[index]
            if isinstance(condition, EqualityDisjunction):
                out.extend(condition.values)
            else:
                assert isinstance(condition, IntervalDisjunction)
                for interval in condition.intervals:
                    from repro.engine.datatypes import Infinity

                    if not isinstance(interval.low, Infinity):
                        out.append(interval.low)
                    if not isinstance(interval.high, Infinity):
                        out.append(interval.high)
        return out

    def value_frequencies(self, column: str) -> Counter:
        """How often each value/endpoint appeared (hot-set analysis)."""
        return Counter(self.observed_values(column))

    def hot_cells(self, top: int = 10) -> list[tuple[tuple, int]]:
        """The most frequent equality cells across the trace.

        Only defined for all-equality templates (where a query's cells
        are the cartesian product of its disjunct values).
        """
        counts: Counter = Counter()
        for query in self.queries:
            value_lists = []
            for condition in query.cselect.conditions:
                if not isinstance(condition, EqualityDisjunction):
                    raise WorkloadError("hot_cells needs an all-equality template")
                value_lists.append(condition.values)
            import itertools

            for cell in itertools.product(*value_lists):
                counts[cell] += 1
        return counts.most_common(top)

    # -- replay -----------------------------------------------------------------

    def replay(self, execute: Callable[[Query], Any]) -> list[Any]:
        """Run every recorded query through ``execute`` in order."""
        return [execute(query) for query in self.queries]


class QueryTraceRecorder:
    """Records queries flowing to an executor.

    Either call :meth:`record` explicitly, or use :meth:`wrap` to get a
    drop-in replacement for an ``execute`` callable that records as it
    forwards.
    """

    def __init__(self, template: QueryTemplate, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise WorkloadError("trace capacity must be >= 1")
        self.trace = QueryTrace(template)
        self.capacity = capacity

    def record(self, query: Query) -> Query:
        if query.template is not self.trace.template:
            raise WorkloadError(
                f"query from template {query.template.name!r} does not belong "
                f"to trace of {self.trace.template.name!r}"
            )
        self.trace.queries.append(query)
        if self.capacity is not None and len(self.trace.queries) > self.capacity:
            del self.trace.queries[0]
        return query

    def record_all(self, queries: Iterable[Query]) -> None:
        for query in queries:
            self.record(query)

    def wrap(self, execute: Callable[[Query], Any]) -> Callable[[Query], Any]:
        """A recording proxy around an ``execute(query)`` callable."""

        def recording_execute(query: Query, *args, **kwargs):
            self.record(query)
            return execute(query, *args, **kwargs)

        return recording_execute
