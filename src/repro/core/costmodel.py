"""Analytical maintenance-cost model (Section 4.3, Figures 11-12).

The paper evaluates maintenance overhead with an analytical model (full
details in its unavailable extended version [25]); this module
re-derives an explicit model from the mechanics stated in the main
text, for the two-relation template of Figure 1:

A transaction ``T`` applies ``|ΔR|`` changes to base relation ``R``:
``p × |ΔR|`` inserts and ``(1 - p) × |ΔR|`` deletes.  Both methods pay
the same base-relation update cost, so (like the paper) the model
compares only the *view* maintenance work, measured as the total
workload ``TW`` in I/Os.

**Traditional MV** (immediate maintenance):

- per inserted/deleted R tuple, the delta join with ``S`` costs an
  index descent plus one page read per matching ``S`` tuple;
- each join result tuple is then installed in / removed from ``VM``;
  removal is dearer than insertion (it must first locate the victim
  via the MV's index and rewrite both the data page and the index
  leaf), matching the paper's "inserting a tuple into VM is less
  expensive than deleting a tuple from VM".

**PMV** (deferred maintenance):

- inserts cost exactly zero (Section 3.4 case 1);
- a delete needs only an in-memory probe of the PMV (aux-index
  strategy); the UB bound keeps most of the PMV cached, so only a
  small miss fraction of probes touches disk, and in-memory operations
  are charged at a tiny I/O-equivalent.

With the default parameters the model lands in the paper's reported
bands: TW(MV) is ≥ two orders of magnitude above TW(PMV) for every p,
both decrease in p, TW(PMV) hits exactly 0 at p = 100 %, and the
speedup ratio rises from ≈10² toward ≈10³ as p → 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PMVError

__all__ = ["CostParameters", "CostPoint", "MaintenanceCostModel"]


@dataclass(frozen=True)
class CostParameters:
    """Physical constants of the cost model (all costs in page I/Os).

    Attributes
    ----------
    delta_size:
        ``|ΔR|``, the number of changed R tuples per transaction
        (the paper fixes 1,000).
    join_fanout:
        Matching S tuples per R tuple in the delta join.
    index_descent_reads:
        Page reads to descend a disk-based secondary index (inner
        levels + leaf).
    data_page_reads_per_match:
        Page reads to fetch one matching S tuple.
    mv_insert_writes_per_result:
        Page writes to append one result tuple to VM and its index
        (no locate step: new tuples go to a free slot).
    mv_delete_ios_per_result:
        I/Os to remove one result tuple from VM: index descent +
        data-page read, then data-page and index-leaf writes.
    pmv_miss_probability:
        Fraction of PMV probes that fall on a non-resident page
        (the UB bound keeps this small).
    pmv_miss_ios:
        I/Os charged when a PMV probe does miss (read + write-back).
    memory_ops_per_pmv_delete:
        In-memory operations per PMV delete (hash probe + up to F
        tuple comparisons + list removal).
    memory_op_io_equivalent:
        I/O-equivalents of one in-memory operation (≈ 10 µs memory
        work per 5 ms disk I/O would be 2e-3; we charge 1e-4 to stay
        conservative toward the MV side).
    n_relations:
        Number of base relations in the view (the paper's model is
        two-relation; its text notes the extension to more relations
        is mechanical — each extra relation adds one more index-probe
        hop to the delta join, and the match count multiplies).
    """

    delta_size: int = 1000
    join_fanout: float = 2.0
    index_descent_reads: float = 2.0
    data_page_reads_per_match: float = 1.0
    mv_insert_writes_per_result: float = 2.0
    mv_delete_ios_per_result: float = 4.0
    pmv_miss_probability: float = 0.05
    pmv_miss_ios: float = 2.0
    memory_ops_per_pmv_delete: float = 20.0
    memory_op_io_equivalent: float = 1e-4
    n_relations: int = 2

    def __post_init__(self) -> None:
        if self.delta_size < 1:
            raise PMVError("delta_size must be >= 1")
        if self.n_relations < 2:
            raise PMVError("n_relations must be >= 2")
        if not 0.0 <= self.pmv_miss_probability <= 1.0:
            raise PMVError("pmv_miss_probability must be in [0, 1]")
        for name in (
            "join_fanout",
            "index_descent_reads",
            "data_page_reads_per_match",
            "mv_insert_writes_per_result",
            "mv_delete_ios_per_result",
            "pmv_miss_ios",
            "memory_ops_per_pmv_delete",
            "memory_op_io_equivalent",
        ):
            if getattr(self, name) < 0:
                raise PMVError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CostPoint:
    """Model output at one insert fraction p."""

    insert_fraction: float
    mv_workload_ios: float
    pmv_workload_ios: float

    @property
    def speedup(self) -> float:
        """TW(MV) / TW(PMV); infinite at p = 100 % where TW(PMV) = 0."""
        if self.pmv_workload_ios == 0.0:
            return math.inf
        return self.mv_workload_ios / self.pmv_workload_ios


@dataclass
class MaintenanceCostModel:
    """Evaluates TW(MV), TW(PMV), and their ratio over insert fractions."""

    params: CostParameters = field(default_factory=CostParameters)

    # -- per-delta-tuple costs -----------------------------------------------------

    def delta_join_ios(self) -> float:
        """I/Os to join one ΔR tuple with the other base relations.

        Each of the n-1 hops descends the next relation's join index
        and fetches the matching rows; the number of partial results
        multiplies by the fanout at every hop.
        """
        p = self.params
        total = 0.0
        bindings = 1.0
        for _ in range(p.n_relations - 1):
            total += bindings * (
                p.index_descent_reads + p.join_fanout * p.data_page_reads_per_match
            )
            bindings *= p.join_fanout
        return total

    def results_per_delta_tuple(self) -> float:
        """Join results derived from one ΔR tuple: fanout^(n-1)."""
        return self.params.join_fanout ** (self.params.n_relations - 1)

    def mv_insert_cost_per_tuple(self) -> float:
        """MV maintenance I/Os for one inserted R tuple."""
        p = self.params
        return (
            self.delta_join_ios()
            + self.results_per_delta_tuple() * p.mv_insert_writes_per_result
        )

    def mv_delete_cost_per_tuple(self) -> float:
        """MV maintenance I/Os for one deleted R tuple."""
        p = self.params
        return (
            self.delta_join_ios()
            + self.results_per_delta_tuple() * p.mv_delete_ios_per_result
        )

    def pmv_insert_cost_per_tuple(self) -> float:
        """PMV maintenance cost of an insert: exactly zero (deferred)."""
        return 0.0

    def pmv_delete_cost_per_tuple(self) -> float:
        """PMV maintenance I/O-equivalents for one deleted R tuple."""
        p = self.params
        return (
            p.pmv_miss_probability * p.pmv_miss_ios
            + p.memory_ops_per_pmv_delete * p.memory_op_io_equivalent
        )

    # -- transaction-level workloads --------------------------------------------------

    def _split(self, insert_fraction: float) -> tuple[float, float]:
        if not 0.0 <= insert_fraction <= 1.0:
            raise PMVError("insert_fraction must be in [0, 1]")
        inserts = insert_fraction * self.params.delta_size
        deletes = (1.0 - insert_fraction) * self.params.delta_size
        return inserts, deletes

    def mv_workload(self, insert_fraction: float) -> float:
        """TW for maintaining the traditional MV, in I/Os."""
        inserts, deletes = self._split(insert_fraction)
        return (
            inserts * self.mv_insert_cost_per_tuple()
            + deletes * self.mv_delete_cost_per_tuple()
        )

    def pmv_workload(self, insert_fraction: float) -> float:
        """TW for maintaining the PMV, in I/O-equivalents."""
        _, deletes = self._split(insert_fraction)
        return deletes * self.pmv_delete_cost_per_tuple()

    def evaluate(self, insert_fraction: float) -> CostPoint:
        return CostPoint(
            insert_fraction=insert_fraction,
            mv_workload_ios=self.mv_workload(insert_fraction),
            pmv_workload_ios=self.pmv_workload(insert_fraction),
        )

    def sweep(self, insert_fractions: Sequence[float]) -> list[CostPoint]:
        """Evaluate the model over a grid of p values (Figures 11-12)."""
        return [self.evaluate(p) for p in insert_fractions]

    # -- headline checks ------------------------------------------------------------------

    def minimum_gap_orders_of_magnitude(self, insert_fractions: Sequence[float]) -> float:
        """The smallest log10(TW_MV / TW_PMV) over the grid, ignoring
        points where TW(PMV) is exactly zero.

        The paper claims "at least two orders of magnitude" — this is
        the quantity that claim is checked against.
        """
        gaps = [
            math.log10(point.speedup)
            for point in self.sweep(insert_fractions)
            if point.pmv_workload_ios > 0.0
        ]
        if not gaps:
            raise PMVError("no grid point has nonzero PMV workload")
        return min(gaps)
