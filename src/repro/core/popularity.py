"""Popularity ranking of result tuples (the conclusion's extension).

The paper's conclusion: "our techniques can be extended to address
other problems, such as ranking query result tuples according to their
popularity."  A PMV already knows which results are hot — they are the
ones that keep being delivered.  :class:`PopularityTracker` counts
deliveries per result tuple (bounded to the most popular ``capacity``
tuples with a space-saving style eviction) and
:class:`RankedPMVExecutor` uses it to return each query's answer with
the historically most-requested tuples first, partial results leading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import PMVExecutor, PMVQueryResult
from repro.engine.row import Row
from repro.engine.template import Query
from repro.errors import PMVError

__all__ = ["PopularityTracker", "RankedPMVExecutor"]


class PopularityTracker:
    """Bounded per-tuple delivery counts.

    Uses the *space-saving* scheme: when full, a new tuple takes over
    the entry with the minimum count (inheriting that count), so the
    heaviest hitters are retained with bounded memory.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise PMVError("popularity capacity must be >= 1")
        self.capacity = capacity
        self._counts: dict[Row, int] = {}

    def record(self, row: Row, amount: int = 1) -> None:
        """Record ``amount`` deliveries of ``row``."""
        if row in self._counts:
            self._counts[row] += amount
            return
        if len(self._counts) < self.capacity:
            self._counts[row] = amount
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        inherited = self._counts.pop(victim)
        self._counts[row] = inherited + amount

    def record_all(self, rows) -> None:
        for row in rows:
            self.record(row)

    def popularity(self, row: Row) -> int:
        """The (approximate) delivery count of ``row``; 0 if untracked."""
        return self._counts.get(row, 0)

    def top(self, n: int) -> list[tuple[Row, int]]:
        """The ``n`` most popular tuples with their counts."""
        ranked = sorted(self._counts.items(), key=lambda item: -item[1])
        return ranked[:n]

    def __len__(self) -> int:
        return len(self._counts)


@dataclass
class RankedResult:
    """A query answer ordered by historical popularity."""

    underlying: PMVQueryResult
    ranked_rows: list[Row] = field(default_factory=list)

    @property
    def had_partial_results(self) -> bool:
        return self.underlying.had_partial_results


class RankedPMVExecutor:
    """Executes template queries and ranks answers by popularity.

    Partial (immediately available) tuples are kept ahead of the
    remainder — the user sees hot results first *and* soonest — with
    popularity ordering applied within each band.
    """

    def __init__(self, executor: PMVExecutor, tracker: PopularityTracker | None = None) -> None:
        self.executor = executor
        self.tracker = tracker or PopularityTracker()

    def execute(self, query: Query) -> RankedResult:
        result = self.executor.execute(query)
        # Rank by popularity *before* recording this delivery, so the
        # ordering reflects history rather than the current query.
        partial = sorted(
            result.partial_rows, key=lambda row: -self.tracker.popularity(row)
        )
        remaining = sorted(
            result.remaining_rows, key=lambda row: -self.tracker.popularity(row)
        )
        self.tracker.record_all(result.all_rows())
        return RankedResult(underlying=result, ranked_rows=partial + remaining)
