"""The temporary in-memory structure ``DS`` (Sections 3 and 3.3).

``DS`` records the partial result tuples already delivered to the user
in Operation O2 so that Operation O3 returns each result tuple exactly
once.  Query results are multisets — the paper is explicit that a
delivered tuple must be *removed* from DS when matched, otherwise a
later duplicate would wrongly be suppressed — so DS is a counting
multiset, not a set.
"""

from __future__ import annotations

from repro.engine.row import Row
from repro.errors import PMVError

__all__ = ["DuplicateSuppressor"]


class DuplicateSuppressor:
    """A counting multiset of rows with O(1) add / consume."""

    def __init__(self) -> None:
        self._counts: dict[Row, int] = {}
        self._size = 0

    def add(self, row: Row) -> None:
        """Record that ``row`` was delivered to the user in O2."""
        self._counts[row] = self._counts.get(row, 0) + 1
        self._size += 1

    def consume(self, row: Row) -> bool:
        """If ``row`` is recorded, remove one occurrence and return True.

        O3 calls this for every result tuple; a True return means the
        user already has this occurrence and it must not be re-sent.
        """
        count = self._counts.get(row, 0)
        if count == 0:
            return False
        if count == 1:
            del self._counts[row]
        else:
            self._counts[row] = count - 1
        self._size -= 1
        return True

    def contains(self, row: Row) -> bool:
        return self._counts.get(row, 0) > 0

    def __len__(self) -> int:
        return self._size

    def assert_empty(self) -> None:
        """Paper invariant: after O3 processes every result tuple, DS
        must be empty — every O2-delivered tuple was re-derived by the
        full execution.  A leftover means the PMV served a stale tuple.
        """
        if self._size:
            sample = next(iter(self._counts))
            raise PMVError(
                f"DS not empty after O3: {self._size} tuple(s) left, e.g. {sample!r}; "
                "the PMV delivered results full execution did not produce"
            )
