"""The temporary in-memory structure ``DS`` (Sections 3 and 3.3).

``DS`` records the partial result tuples already delivered to the user
in Operation O2 so that Operation O3 returns each result tuple exactly
once.  Query results are multisets — the paper is explicit that a
delivered tuple must be *removed* from DS when matched, otherwise a
later duplicate would wrongly be suppressed — so DS is a counting
multiset, not a set.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.engine.row import Row
from repro.errors import PMVError

__all__ = ["DuplicateSuppressor"]


class DuplicateSuppressor:
    """A counting multiset of rows with O(1) add / consume.

    Internally keyed by each row's *value tuple* rather than the
    :class:`Row` object: row equality and hashing are values-only
    anyway, and tuple keys hash and compare at C speed — this matters
    because O2 adds and O3 consumes every delivered tuple.

    The columnar pipeline talks to DS in value tuples directly
    (:meth:`add_batch` / :meth:`consume_batch`), so no :class:`Row`
    objects exist on that path; the count store is a
    :class:`collections.Counter` so bulk adds run in C.
    """

    def __init__(self) -> None:
        self._counts: Counter[tuple] = Counter()
        self._size = 0

    def add(self, row: Row) -> None:
        """Record that ``row`` was delivered to the user in O2."""
        values = row.values
        self._counts[values] = self._counts.get(values, 0) + 1
        self._size += 1

    def add_many(self, rows: "list[Row] | tuple[Row, ...]") -> None:
        """Record a batch of delivered rows (O2's per-entry bulk path).

        Equivalent to calling :meth:`add` per row, minus the per-row
        Python call overhead — O2 delivers whole entries at a time.
        """
        counts = self._counts
        get = counts.get
        for row in rows:
            values = row.values
            counts[values] = get(values, 0) + 1
        self._size += len(rows)

    def add_batch(self, values: "Sequence[tuple] | Iterable[tuple]") -> None:
        """Record a batch of delivered *value tuples* (columnar O2).

        ``Counter.update`` runs the counting loop in C — this is the
        vectorized analogue of :meth:`add_many` with no ``Row``
        objects involved.
        """
        if not hasattr(values, "__len__"):
            values = list(values)
        self._counts.update(values)
        self._size += len(values)

    def consume_batch(self, values: "Sequence[tuple]") -> list[tuple]:
        """Consume one recorded occurrence of each value tuple; return
        the tuples that were *not* recorded (columnar O3).

        Tuple-level twin of :meth:`consume_many`: same semantics, same
        order preservation, no ``Row`` objects.
        """
        counts = self._counts
        if not counts:
            return list(values)
        fresh: list[tuple] = []
        append = fresh.append
        get = counts.get
        consumed = 0
        for t in values:
            count = get(t, 0)
            if count == 0:
                append(t)
            elif count == 1:
                del counts[t]
                consumed += 1
            else:
                counts[t] = count - 1
                consumed += 1
        self._size -= consumed
        return fresh

    def consume_many(self, rows: list[Row]) -> list[Row]:
        """Consume one recorded occurrence of each row; return the
        rows that were *not* recorded (O3's bulk dedup path).

        Equivalent to ``[row for row in rows if not self.consume(row)]``
        with the loop run inside one call.  Order is preserved.  The
        returned list is always a fresh object, never the caller's —
        aliasing the input would let downstream mutation corrupt the
        operator's batch.
        """
        counts = self._counts
        if not counts:
            return list(rows)
        fresh: list[Row] = []
        append = fresh.append
        get = counts.get
        consumed = 0
        for row in rows:
            values = row.values
            count = get(values, 0)
            if count == 0:
                append(row)
            elif count == 1:
                del counts[values]
                consumed += 1
            else:
                counts[values] = count - 1
                consumed += 1
        self._size -= consumed
        return fresh

    def consume(self, row: Row) -> bool:
        """If ``row`` is recorded, remove one occurrence and return True.

        O3 calls this for every result tuple; a True return means the
        user already has this occurrence and it must not be re-sent.
        """
        values = row.values
        count = self._counts.get(values, 0)
        if count == 0:
            return False
        if count == 1:
            del self._counts[values]
        else:
            self._counts[values] = count - 1
        self._size -= 1
        return True

    def contains(self, row: Row) -> bool:
        return self._counts.get(row.values, 0) > 0

    def __len__(self) -> int:
        return self._size

    def assert_empty(self) -> None:
        """Paper invariant: after O3 processes every result tuple, DS
        must be empty — every O2-delivered tuple was re-derived by the
        full execution.  A leftover means the PMV served a stale tuple.
        """
        if self._size:
            sample = next(iter(self._counts))
            raise PMVError(
                f"DS not empty after O3: {self._size} tuple(s) left, e.g. {sample!r}; "
                "the PMV delivered results full execution did not produce"
            )
