"""Discretization: dividing values and basic intervals (Section 3.1).

For every interval-form slot of a template, the range of possible
values ``Ei`` is cut by *dividing values* into non-overlapping *basic
intervals* that fully cover ``Ei``.  Each basic interval gets an id;
ids are what basic condition parts store.

Dividing values come from one of three sources the paper names:

1. the form's from/to value lists (pass them straight to
   :class:`BasicIntervals`);
2. a person (DBA) defining the PMV;
3. learning from query traces — :func:`learn_dividing_values`
   implements an equal-frequency discretizer in the spirit of the
   continuous-feature-discretization literature the paper cites.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

from repro.engine.datatypes import Infinity, MINUS_INFINITY, PLUS_INFINITY
from repro.engine.predicate import Interval
from repro.engine.template import QueryTemplate, SlotForm
from repro.errors import DiscretizationError

__all__ = ["BasicIntervals", "Discretization", "learn_dividing_values"]


class BasicIntervals:
    """The basic intervals of one interval-form slot.

    ``k`` dividing values ``d1 < … < dk`` over a range ``(low, high)``
    produce ``k+1`` basic intervals::

        (low, d1)  [d1, d2)  …  [dk, high)

    Half-open on the left boundary so the intervals are pairwise
    disjoint and fully cover the range, as Section 3.1 requires.  Ids
    are assigned left to right starting at 0.
    """

    def __init__(
        self,
        dividing_values: Sequence[Any],
        low: Any = MINUS_INFINITY,
        high: Any = PLUS_INFINITY,
    ) -> None:
        values = list(dividing_values)
        if not values:
            raise DiscretizationError("need at least one dividing value")
        if sorted(values) != values or len(set(values)) != len(values):
            raise DiscretizationError("dividing values must be strictly increasing")
        if not isinstance(low, Infinity) and values[0] <= low:
            raise DiscretizationError("dividing values must lie inside the range")
        if not isinstance(high, Infinity) and values[-1] >= high:
            raise DiscretizationError("dividing values must lie inside the range")
        self.dividing_values = values
        self.low = low
        self.high = high
        self._intervals: list[Interval] = []
        bounds = [low, *values, high]
        for i in range(len(bounds) - 1):
            self._intervals.append(
                Interval(
                    bounds[i],
                    bounds[i + 1],
                    low_inclusive=i > 0,  # the leftmost interval is open below
                    high_inclusive=False,
                )
            )

    # -- lookup ----------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._intervals)

    def interval(self, basic_id: int) -> Interval:
        """The basic interval with id ``basic_id``."""
        if not 0 <= basic_id < len(self._intervals):
            raise DiscretizationError(f"no basic interval #{basic_id}")
        return self._intervals[basic_id]

    def id_for_value(self, value: Any) -> int:
        """Id of the basic interval containing ``value``.

        ``bisect_right`` over the dividing values gives the id directly
        because interval ``i`` covers ``[d_i, d_{i+1})``.
        """
        if not isinstance(self.low, Infinity) and value <= self.low:
            raise DiscretizationError(f"value {value!r} below range")
        if not isinstance(self.high, Infinity) and value >= self.high:
            raise DiscretizationError(f"value {value!r} above range")
        return bisect.bisect_right(self.dividing_values, value)

    def overlapping_ids(self, query_interval: Interval) -> list[int]:
        """Ids of every basic interval that overlaps ``query_interval``.

        This is Operation O1's ``J_r`` computation for one query
        interval.
        """
        out = [
            basic_id
            for basic_id, basic in enumerate(self._intervals)
            if basic.overlaps(query_interval)
        ]
        if not out:
            raise DiscretizationError(
                f"query interval {query_interval} falls outside the covered range"
            )
        return out

    def all_intervals(self) -> tuple[Interval, ...]:
        return tuple(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicIntervals({self.count} intervals over {self.low!r}..{self.high!r})"


class Discretization:
    """Per-template discretization: one :class:`BasicIntervals` per
    interval-form slot (equality slots need none — their "cells" are
    the attribute values themselves)."""

    def __init__(
        self,
        template: QueryTemplate,
        interval_grids: dict[str, BasicIntervals] | None = None,
    ) -> None:
        grids = dict(interval_grids or {})
        for slot in template.slots:
            if slot.form is SlotForm.INTERVAL and slot.column not in grids:
                raise DiscretizationError(
                    f"interval slot {slot.column!r} has no basic intervals; "
                    "supply dividing values"
                )
        for column in grids:
            slot = next((s for s in template.slots if s.column == column), None)
            if slot is None:
                raise DiscretizationError(f"no slot on {column!r} in template")
            if slot.form is not SlotForm.INTERVAL:
                raise DiscretizationError(
                    f"slot {column!r} is equality-form; it takes no dividing values"
                )
        self.template = template
        self._grids = grids

    def grid(self, column: str) -> BasicIntervals:
        try:
            return self._grids[column]
        except KeyError:
            raise DiscretizationError(f"no basic intervals for {column!r}") from None

    def has_grid(self, column: str) -> bool:
        return column in self._grids


def learn_dividing_values(
    observed_values: Sequence[Any],
    bins: int,
) -> list[Any]:
    """Equal-frequency dividing values learned from a trace.

    Sorts the observed endpoint values from a query trace and picks
    ``bins - 1`` cut points so each basic interval sees roughly the
    same number of observations — the unsupervised discretization
    strategy of the machine-learning literature the paper cites
    ([11]).  Duplicate cut points collapse, so fewer than ``bins - 1``
    values can be returned for skewed traces.
    """
    if bins < 2:
        raise DiscretizationError("need at least 2 bins")
    values = sorted(observed_values)
    if not values:
        raise DiscretizationError("cannot learn dividing values from an empty trace")
    cuts: list[Any] = []
    for i in range(1, bins):
        pos = round(i * len(values) / bins)
        pos = min(max(pos, 0), len(values) - 1)
        cut = values[pos]
        if not cuts or cut > cuts[-1]:
            cuts.append(cut)
    if not cuts:
        raise DiscretizationError("trace has too few distinct values to discretize")
    return cuts
