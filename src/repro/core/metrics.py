"""Counters and timings for the PMV layer.

Collects exactly the quantities Section 4 reports: the per-query hit
probability (a *partial* hit — any one bcp of the query resident counts,
Section 4.1), the overhead of the PMV code paths (Operations O1 + O2
plus O3's duplicate checking, Figures 8-10), and maintenance work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["QueryMetrics", "PMVMetrics", "QoSMetrics", "NetMetrics"]


@dataclass
class QueryMetrics:
    """Measurements for one query handled through the PMV."""

    condition_parts: int = 0
    bcp_hits: int = 0
    partial_tuples: int = 0
    remaining_tuples: int = 0
    overhead_seconds: float = 0.0
    partial_latency_seconds: float = 0.0
    execution_seconds: float = 0.0
    o1_cache_hit: bool | None = None
    """Whether O1 was answered from the decomposition memo.  ``None``
    when the executor ran without a memo (caching disabled)."""
    bypassed_lock: bool = False
    """The view's S lock was unavailable, so the query skipped the PMV
    and ran as a plain blocking execution (or an empty preview)."""
    deadline_degraded: bool = False
    """The query's deadline budget ran out before full execution
    finished: Operation O3 was skipped (or abandoned at a batch
    checkpoint) and the answer was returned incomplete, with the
    ``complete=False`` marker."""
    bypassed_stale: bool = False
    """The view's applied-LSN lag exceeded the executor's
    ``freshness_bound``, so the query skipped the PMV and ran as a
    plain blocking execution — a fresh, complete answer."""
    stale_partial_tuples: int = 0
    """Cached tuples delivered in O2 that full execution did not
    re-derive: bounded-stale extras an async-maintained view may serve
    (each was a true result at some LSN ≥ the view's watermark).  An
    eagerly-maintained view raises instead of counting."""

    @property
    def hit(self) -> bool:
        """The paper's per-query hit: at least one bcp was resident."""
        return self.bcp_hits > 0

    @property
    def total_tuples(self) -> int:
        return self.partial_tuples + self.remaining_tuples


@dataclass
class PMVMetrics:
    """Aggregated measurements over a PMV's lifetime."""

    queries: int = 0
    query_hits: int = 0
    partial_tuples: int = 0
    remaining_tuples: int = 0
    overhead_seconds: float = 0.0
    execution_seconds: float = 0.0
    tuples_cached: int = 0
    tuples_rejected_full: int = 0
    entries_evicted: int = 0
    o1_cache_hits: int = 0
    o1_cache_misses: int = 0
    maintenance_inserts_ignored: int = 0
    maintenance_deletes: int = 0
    maintenance_updates_skipped: int = 0
    maintenance_tuples_removed: int = 0
    maintenance_failsafe_clears: int = 0
    """Times a failure mid-maintenance forced the fail-safe: the whole
    PMV is cleared, because an empty PMV is always a correct PMV while
    a partially-maintained one may serve stale tuples."""
    pmv_bypassed_lock: int = 0
    """Queries that could not get the view's S lock and degraded to a
    plain blocking execution (or an empty preview) instead of failing."""
    maintenance_lock_retries: int = 0
    """Times a maintenance X-lock request lost to readers and was
    retried after a backoff before succeeding or giving up."""
    qos_partial_answers: int = 0
    """Deadline-degraded answers this view served: the PMV's partial
    results were returned as the whole (explicitly incomplete) answer
    because the query's deadline budget ran out before O3 finished."""
    maintenance_deferred: int = 0
    """Relevant changes routed cold by the heavy-light splitter: no
    write-path X lock, the delta rides the outbox feed to the
    background drain (async mode only)."""
    maintenance_async_applied: int = 0
    """Deltas the background drain applied to this view."""
    pmv_bypassed_stale: int = 0
    """Queries that found the view's applied-LSN lag beyond the
    freshness bound and degraded to a plain blocking execution."""
    stale_partial_tuples: int = 0
    """Total bounded-stale extras delivered by O2 across queries (see
    :attr:`QueryMetrics.stale_partial_tuples`)."""
    swallowed_errors: int = 0
    """Secondary exceptions a fail-safe path consumed (e.g. the
    maintenance fail-safe clear itself failing while handling the
    original error).  A non-zero value means the system degraded
    silently somewhere — each swallow is deliberate, but must never be
    invisible."""
    per_query: list[QueryMetrics] = field(default_factory=list)
    keep_per_query: bool = False
    # Serializes record_query across concurrent client threads; the
    # field tricks keep the dataclass hashable/printable as before.
    _record_mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_query(self, metrics: QueryMetrics) -> None:
        with self._record_mutex:
            self.queries += 1
            if metrics.hit:
                self.query_hits += 1
            self.partial_tuples += metrics.partial_tuples
            self.remaining_tuples += metrics.remaining_tuples
            self.overhead_seconds += metrics.overhead_seconds
            self.execution_seconds += metrics.execution_seconds
            if metrics.o1_cache_hit is True:
                self.o1_cache_hits += 1
            elif metrics.o1_cache_hit is False:
                self.o1_cache_misses += 1
            if metrics.bypassed_lock:
                self.pmv_bypassed_lock += 1
            if metrics.bypassed_stale:
                self.pmv_bypassed_stale += 1
            self.stale_partial_tuples += metrics.stale_partial_tuples
            if metrics.deadline_degraded:
                self.qos_partial_answers += 1
            if self.keep_per_query:
                self.per_query.append(metrics)

    def snapshot(self) -> dict[str, int | float]:
        """A consistent counter snapshot, read under the record mutex.

        Concurrent clients bump these counters through
        :meth:`record_query`; reading them attribute-by-attribute can
        observe a torn multi-counter state.  ``stats()`` surfaces and
        bench JSON reports go through this instead.
        """
        with self._record_mutex:
            return {
                "queries": self.queries,
                "query_hits": self.query_hits,
                "partial_tuples": self.partial_tuples,
                "remaining_tuples": self.remaining_tuples,
                "overhead_seconds": self.overhead_seconds,
                "execution_seconds": self.execution_seconds,
                "tuples_cached": self.tuples_cached,
                "entries_evicted": self.entries_evicted,
                "maintenance_failsafe_clears": self.maintenance_failsafe_clears,
                "pmv_bypassed_lock": self.pmv_bypassed_lock,
                "maintenance_lock_retries": self.maintenance_lock_retries,
                "maintenance_deferred": self.maintenance_deferred,
                "maintenance_async_applied": self.maintenance_async_applied,
                "pmv_bypassed_stale": self.pmv_bypassed_stale,
                "stale_partial_tuples": self.stale_partial_tuples,
                "qos_partial_answers": self.qos_partial_answers,
                "swallowed_errors": self.swallowed_errors,
            }

    @property
    def hit_probability(self) -> float:
        """Fraction of queries that received some partial results."""
        return self.query_hits / self.queries if self.queries else 0.0

    @property
    def mean_overhead_seconds(self) -> float:
        return self.overhead_seconds / self.queries if self.queries else 0.0

    @property
    def mean_execution_seconds(self) -> float:
        return self.execution_seconds / self.queries if self.queries else 0.0

    @property
    def o1_cache_hit_ratio(self) -> float:
        """Fraction of memo-enabled O1 runs served from the cache."""
        total = self.o1_cache_hits + self.o1_cache_misses
        return self.o1_cache_hits / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.queries = 0
        self.query_hits = 0
        self.partial_tuples = 0
        self.remaining_tuples = 0
        self.overhead_seconds = 0.0
        self.execution_seconds = 0.0
        self.tuples_cached = 0
        self.tuples_rejected_full = 0
        self.entries_evicted = 0
        self.o1_cache_hits = 0
        self.o1_cache_misses = 0
        self.maintenance_inserts_ignored = 0
        self.maintenance_deletes = 0
        self.maintenance_updates_skipped = 0
        self.maintenance_tuples_removed = 0
        self.maintenance_failsafe_clears = 0
        self.pmv_bypassed_lock = 0
        self.maintenance_lock_retries = 0
        self.maintenance_deferred = 0
        self.maintenance_async_applied = 0
        self.pmv_bypassed_stale = 0
        self.stale_partial_tuples = 0
        self.qos_partial_answers = 0
        self.swallowed_errors = 0
        self.per_query.clear()


@dataclass
class QoSMetrics:
    """Serving-stack-wide QoS counters (one per :class:`ServingGate`).

    Admission and degradation decisions happen before a query is routed
    to any one view, so these counters live above :class:`PMVMetrics`.
    All writes and snapshot reads go through the record mutex, exactly
    like the per-view counters, so concurrent clients and the bench
    reporter always see a consistent state.
    """

    admitted: int = 0
    shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    partial_answers: int = 0
    complete_answers: int = 0
    deadline_abandons: int = 0
    """O3 runs abandoned at a cooperative batch checkpoint (a strict
    subset of ``partial_answers``; the rest skipped O3 outright)."""
    state_transitions: int = 0
    state: str = "NORMAL"
    breaker_state: str = "closed"
    breaker_opens: int = 0
    swallowed_errors: int = 0
    _record_mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_admitted(self) -> None:
        with self._record_mutex:
            self.admitted += 1

    def record_shed(self, reason: str) -> None:
        with self._record_mutex:
            self.shed += 1
            self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1

    def record_answer(self, complete: bool, abandoned: bool = False) -> None:
        with self._record_mutex:
            if complete:
                self.complete_answers += 1
            else:
                self.partial_answers += 1
                if abandoned:
                    self.deadline_abandons += 1

    def record_transition(self, state: str) -> None:
        with self._record_mutex:
            self.state = state
            self.state_transitions += 1

    def record_breaker(self, state: str) -> None:
        with self._record_mutex:
            if state == "open" and self.breaker_state != "open":
                self.breaker_opens += 1
            self.breaker_state = state

    def record_swallowed(self) -> None:
        with self._record_mutex:
            self.swallowed_errors += 1

    def snapshot(self) -> dict:
        """Consistent gauge/counter snapshot (under the record mutex)."""
        with self._record_mutex:
            return {
                "qos_admitted": self.admitted,
                "qos_shed": self.shed,
                "qos_shed_by_reason": dict(self.shed_by_reason),
                "qos_partial_answers": self.partial_answers,
                "qos_complete_answers": self.complete_answers,
                "qos_deadline_abandons": self.deadline_abandons,
                "qos_state_transitions": self.state_transitions,
                "qos_state": self.state,
                "breaker_state": self.breaker_state,
                "breaker_opens": self.breaker_opens,
                "swallowed_errors": self.swallowed_errors,
            }


@dataclass
class NetMetrics:
    """Network serving tier counters (one per :class:`repro.net.NetServer`).

    Request counters split by op so the stats endpoint shows the remote
    workload mix; the dedup counters are the observable face of the
    at-most-once write contract (a retried write that was already
    applied shows up as a ``dedup_hit``, never as a second row).
    """

    connections_opened: int = 0
    connections_closed: int = 0
    requests: int = 0
    requests_by_op: dict[str, int] = field(default_factory=dict)
    errors: int = 0
    retryable_errors: int = 0
    shed: int = 0
    dedup_hits: int = 0
    dedup_rebuilds: int = 0
    replica_reads: int = 0
    replica_fallbacks: int = 0
    monotonic_fallbacks: int = 0
    writes_applied: int = 0
    connections_refused: int = 0
    _record_mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_connection(self, opened: bool) -> None:
        with self._record_mutex:
            if opened:
                self.connections_opened += 1
            else:
                self.connections_closed += 1

    def record_request(self, op: str) -> None:
        with self._record_mutex:
            self.requests += 1
            self.requests_by_op[op] = self.requests_by_op.get(op, 0) + 1

    def record_error(self, retryable: bool = False, shed: bool = False) -> None:
        with self._record_mutex:
            self.errors += 1
            if retryable:
                self.retryable_errors += 1
            if shed:
                self.shed += 1

    def record_dedup_hit(self) -> None:
        with self._record_mutex:
            self.dedup_hits += 1

    def record_dedup_rebuild(self) -> None:
        with self._record_mutex:
            self.dedup_rebuilds += 1

    def record_replica_read(self, fallback: bool = False) -> None:
        with self._record_mutex:
            self.replica_reads += 1
            if fallback:
                self.replica_fallbacks += 1

    def record_monotonic_fallback(self) -> None:
        """A replica read was re-routed to the primary because the
        replica's watermark trailed the session's min_lsn token."""
        with self._record_mutex:
            self.monotonic_fallbacks += 1

    def record_connection_refused(self) -> None:
        """The server's refuse_connections hook (nemesis partition
        seam) turned an accepted connection away."""
        with self._record_mutex:
            self.connections_refused += 1

    def record_write_applied(self) -> None:
        with self._record_mutex:
            self.writes_applied += 1

    def snapshot(self) -> dict:
        with self._record_mutex:
            return {
                "net_connections_opened": self.connections_opened,
                "net_connections_closed": self.connections_closed,
                "net_requests": self.requests,
                "net_requests_by_op": dict(self.requests_by_op),
                "net_errors": self.errors,
                "net_retryable_errors": self.retryable_errors,
                "net_shed": self.shed,
                "net_dedup_hits": self.dedup_hits,
                "net_dedup_rebuilds": self.dedup_rebuilds,
                "net_replica_reads": self.replica_reads,
                "net_replica_fallbacks": self.replica_fallbacks,
                "net_monotonic_fallbacks": self.monotonic_fallbacks,
                "net_writes_applied": self.writes_applied,
                "net_connections_refused": self.connections_refused,
            }
