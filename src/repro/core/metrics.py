"""Counters and timings for the PMV layer.

Collects exactly the quantities Section 4 reports: the per-query hit
probability (a *partial* hit — any one bcp of the query resident counts,
Section 4.1), the overhead of the PMV code paths (Operations O1 + O2
plus O3's duplicate checking, Figures 8-10), and maintenance work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["QueryMetrics", "PMVMetrics"]


@dataclass
class QueryMetrics:
    """Measurements for one query handled through the PMV."""

    condition_parts: int = 0
    bcp_hits: int = 0
    partial_tuples: int = 0
    remaining_tuples: int = 0
    overhead_seconds: float = 0.0
    partial_latency_seconds: float = 0.0
    execution_seconds: float = 0.0
    o1_cache_hit: bool | None = None
    """Whether O1 was answered from the decomposition memo.  ``None``
    when the executor ran without a memo (caching disabled)."""
    bypassed_lock: bool = False
    """The view's S lock was unavailable, so the query skipped the PMV
    and ran as a plain blocking execution (or an empty preview)."""

    @property
    def hit(self) -> bool:
        """The paper's per-query hit: at least one bcp was resident."""
        return self.bcp_hits > 0

    @property
    def total_tuples(self) -> int:
        return self.partial_tuples + self.remaining_tuples


@dataclass
class PMVMetrics:
    """Aggregated measurements over a PMV's lifetime."""

    queries: int = 0
    query_hits: int = 0
    partial_tuples: int = 0
    remaining_tuples: int = 0
    overhead_seconds: float = 0.0
    execution_seconds: float = 0.0
    tuples_cached: int = 0
    tuples_rejected_full: int = 0
    entries_evicted: int = 0
    o1_cache_hits: int = 0
    o1_cache_misses: int = 0
    maintenance_inserts_ignored: int = 0
    maintenance_deletes: int = 0
    maintenance_updates_skipped: int = 0
    maintenance_tuples_removed: int = 0
    maintenance_failsafe_clears: int = 0
    """Times a failure mid-maintenance forced the fail-safe: the whole
    PMV is cleared, because an empty PMV is always a correct PMV while
    a partially-maintained one may serve stale tuples."""
    pmv_bypassed_lock: int = 0
    """Queries that could not get the view's S lock and degraded to a
    plain blocking execution (or an empty preview) instead of failing."""
    maintenance_lock_retries: int = 0
    """Times a maintenance X-lock request lost to readers and was
    retried after a backoff before succeeding or giving up."""
    per_query: list[QueryMetrics] = field(default_factory=list)
    keep_per_query: bool = False
    # Serializes record_query across concurrent client threads; the
    # field tricks keep the dataclass hashable/printable as before.
    _record_mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_query(self, metrics: QueryMetrics) -> None:
        with self._record_mutex:
            self.queries += 1
            if metrics.hit:
                self.query_hits += 1
            self.partial_tuples += metrics.partial_tuples
            self.remaining_tuples += metrics.remaining_tuples
            self.overhead_seconds += metrics.overhead_seconds
            self.execution_seconds += metrics.execution_seconds
            if metrics.o1_cache_hit is True:
                self.o1_cache_hits += 1
            elif metrics.o1_cache_hit is False:
                self.o1_cache_misses += 1
            if metrics.bypassed_lock:
                self.pmv_bypassed_lock += 1
            if self.keep_per_query:
                self.per_query.append(metrics)

    @property
    def hit_probability(self) -> float:
        """Fraction of queries that received some partial results."""
        return self.query_hits / self.queries if self.queries else 0.0

    @property
    def mean_overhead_seconds(self) -> float:
        return self.overhead_seconds / self.queries if self.queries else 0.0

    @property
    def mean_execution_seconds(self) -> float:
        return self.execution_seconds / self.queries if self.queries else 0.0

    @property
    def o1_cache_hit_ratio(self) -> float:
        """Fraction of memo-enabled O1 runs served from the cache."""
        total = self.o1_cache_hits + self.o1_cache_misses
        return self.o1_cache_hits / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.queries = 0
        self.query_hits = 0
        self.partial_tuples = 0
        self.remaining_tuples = 0
        self.overhead_seconds = 0.0
        self.execution_seconds = 0.0
        self.tuples_cached = 0
        self.tuples_rejected_full = 0
        self.entries_evicted = 0
        self.o1_cache_hits = 0
        self.o1_cache_misses = 0
        self.maintenance_inserts_ignored = 0
        self.maintenance_deletes = 0
        self.maintenance_updates_skipped = 0
        self.maintenance_tuples_removed = 0
        self.maintenance_failsafe_clears = 0
        self.pmv_bypassed_lock = 0
        self.maintenance_lock_retries = 0
        self.per_query.clear()
