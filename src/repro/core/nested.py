"""EXISTS-subquery acceleration via a PMV (Section 3.6).

The paper's sketch: a two-level nested query whose main query produces
candidate tuples quickly, while checking the correlated ``EXISTS``
condition is slow.  A PMV on the *subquery's* template can confirm
existence immediately whenever any of the subquery's basic condition
parts holds a cached tuple satisfying it — cached tuples are guaranteed
current by deferred maintenance, so a positive probe is a sound
EXISTS verdict with no execution at all.  Only candidates whose probe
misses (or finds no satisfying tuple) pay for a full subquery
execution, and that execution refreshes the PMV for later candidates.

A negative probe is never conclusive (the PMV holds a *subset* of the
results), so misses always fall through to execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.decompose import decompose
from repro.core.executor import PMVExecutor
from repro.engine.row import Row
from repro.engine.template import Query
from repro.errors import PMVError

__all__ = ["ExistsVerdictSource", "ExistsAccelerator", "ExistsStats"]


class ExistsVerdictSource(enum.Enum):
    """How an EXISTS verdict was obtained."""

    PMV_PROBE = "pmv_probe"
    EXECUTION = "execution"


@dataclass
class ExistsStats:
    """How many checks the PMV short-circuited."""

    checks: int = 0
    pmv_confirmations: int = 0
    executions: int = 0

    @property
    def short_circuit_fraction(self) -> float:
        return self.pmv_confirmations / self.checks if self.checks else 0.0


@dataclass
class ExistsAccelerator:
    """Answers ``EXISTS(subquery)`` checks through a subquery PMV."""

    executor: PMVExecutor
    stats: ExistsStats = field(default_factory=ExistsStats)

    def check(self, subquery: Query) -> tuple[bool, ExistsVerdictSource]:
        """Decide whether ``subquery`` has at least one result.

        Fast path: probe the PMV for each of the subquery's condition
        parts; any cached tuple satisfying a part proves existence.
        Slow path: full execution through the PMV executor (which also
        refreshes the PMV so the next probe on this cell hits).
        """
        view = self.executor.view
        if subquery.template is not view.template:
            raise PMVError("subquery is from a different template than the PMV")
        self.stats.checks += 1
        for part in decompose(subquery, view.discretization):
            cached = view.lookup(part.containing.key)
            if not cached:
                continue
            if part.is_basic or any(part.matches(row) for row in cached):
                self.stats.pmv_confirmations += 1
                return True, ExistsVerdictSource.PMV_PROBE
        self.stats.executions += 1
        result = self.executor.execute(subquery)
        return bool(result.all_rows()), ExistsVerdictSource.EXECUTION

    def filter_exists(
        self,
        candidates: Iterator[Row] | list[Row],
        subquery_for: Callable[[Row], Query],
    ) -> Iterator[tuple[Row, ExistsVerdictSource]]:
        """Yield the candidates whose correlated EXISTS check passes.

        ``subquery_for`` builds the correlated subquery for one
        candidate row.  Candidates confirmed by a PMV probe are yielded
        with no subquery execution at all — the paper's "rapidly
        produce some partial results for the entire query".
        """
        for candidate in candidates:
            exists, source = self.check(subquery_for(candidate))
            if exists:
                yield candidate, source
