"""Deferred PMV maintenance (Section 3.4).

A :class:`PMVMaintainer` subscribes to the database's change stream and
keeps one PMV from ever serving stale tuples, at the minimum possible
cost:

- **insert** — never maintained: a new base tuple can only create
  *new* results, and a PMV (being any subset of its containing MV)
  stays correct without them;
- **delete** — affected cached tuples are removed.  Two strategies:
  ``DELTA_JOIN`` computes the join of the deleted row with the other
  base relations (the main-text algorithm); ``AUX_INDEX`` probes the
  PMV's in-memory auxiliary indexes instead (the optimization the
  paper defers to its full version), avoiding the join entirely;
- **update** — skipped outright when no attribute of the expanded
  select list ``Ls'`` or of ``Cjoin`` changed; otherwise handled like
  a delete of the old row (the new values, like an insert, need no
  maintenance).

Locking follows Section 3.6's protocol with proper two-phase ordering:
the maintainer subscribes to the database's *prepare* phase and
acquires the X lock on the PMV **before** the base relation is touched,
so a denial (a reader holds its S lock between O2 and O3) aborts the
writing statement cleanly with no base change — exactly the "updating
some base relation ... would require updating VPM with the acquisition
of an X lock" discipline the paper describes.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Any

from repro.core.view import PartialMaterializedView
from repro.engine.database import Database
from repro.engine.row import Row
from repro.engine.schema import Schema
from repro.engine.template import QueryTemplate
from repro.engine.transactions import Change, ChangeKind, Transaction
from repro.errors import LockError, MaintenanceError, is_control_exception

__all__ = [
    "MaintenanceStrategy",
    "PMVMaintainer",
    "template_result_schema",
    "compute_delta_join",
]


class MaintenanceStrategy(enum.Enum):
    """How deletes/updates locate affected cached tuples."""

    DELTA_JOIN = "delta_join"
    AUX_INDEX = "aux_index"


def template_result_schema(template: QueryTemplate, database: Database) -> Schema:
    """The schema of the template's ``Ls'`` result tuples.

    Built exactly the way the planner builds it (concat of the base
    schemas, then projection), so rows constructed against it compare
    equal to execution output rows.
    """
    catalog = database.catalog
    joined = catalog.relation(template.relations[0]).schema
    for name in template.relations[1:]:
        joined = joined.concat(catalog.relation(name).schema)
    return joined.project(template.expanded_select_list())


def compute_delta_join(
    database: Database,
    template: QueryTemplate,
    relation: str,
    delta_row: Row,
    result_schema: Schema | None = None,
) -> list[Row]:
    """Join one ΔRi row with the template's other base relations.

    Returns ``Ls'`` result rows, exactly as plan execution would
    produce them.  Uses the catalog's join-attribute indexes, so the
    cost mirrors a real system's delta join.  Shared by PMV maintenance
    and the traditional-MV baseline.
    """
    catalog = database.catalog
    if result_schema is None:
        result_schema = template_result_schema(template, database)
    # Each partial binding maps qualified column name -> value.
    bindings: list[dict[str, Any]] = [
        {
            f"{relation}.{name}": value
            for name, value in zip(delta_row.schema.names(), delta_row.values)
        }
    ]
    planned = {relation}
    pending = list(template.joins)
    while pending:
        progressed = False
        for edge in list(pending):
            left_in = edge.left_relation in planned
            right_in = edge.right_relation in planned
            if left_in and right_in:
                pending.remove(edge)
                left_q, right_q = edge.qualified_left(), edge.qualified_right()
                bindings = [b for b in bindings if b[left_q] == b[right_q]]
                progressed = True
                continue
            if not left_in and not right_in:
                continue
            if left_in:
                source_col = edge.qualified_left()
                target_rel, target_col = edge.right_relation, edge.right_column
            else:
                source_col = edge.qualified_right()
                target_rel, target_col = edge.left_relation, edge.left_column
            index = catalog.find_index(target_rel, target_col)
            if index is None:
                raise MaintenanceError(
                    f"delta join needs an index on {target_rel}.{target_col}"
                )
            target = catalog.relation(target_rel)
            grown: list[dict[str, Any]] = []
            for binding in bindings:
                for row_id in index.probe(binding[source_col]):
                    matched = target.fetch(row_id)
                    extended = dict(binding)
                    for name, value in zip(matched.schema.names(), matched.values):
                        extended[f"{target_rel}.{name}"] = value
                    grown.append(extended)
            bindings = grown
            planned.add(target_rel)
            pending.remove(edge)
            progressed = True
        if not progressed:
            raise MaintenanceError(f"join graph of {template.name!r} is disconnected")
    # Parameterless Cjoin conditions must hold as well.
    for condition in template.fixed_conditions:
        column = condition.column
        bindings = [
            binding for binding in bindings if _condition_holds(condition, binding[column])
        ]
    names = template.expanded_select_list()
    return [Row([binding[name] for name in names], result_schema) for binding in bindings]


class PMVMaintainer:
    """Keeps one PMV consistent under base-relation changes."""

    def __init__(
        self,
        database: Database,
        view: PartialMaterializedView,
        strategy: MaintenanceStrategy = MaintenanceStrategy.DELTA_JOIN,
        x_lock_wait: bool = True,
        x_lock_timeout: float = 0.2,
        x_lock_retries: int = 2,
        x_lock_backoff: float = 0.05,
    ) -> None:
        self.database = database
        self.view = view
        self.strategy = strategy
        self._attached = False
        # X-lock acquisition policy: wait up to ``x_lock_timeout`` per
        # attempt, retrying ``x_lock_retries`` times with a linear
        # backoff when the request loses to readers, before letting the
        # LockError abort the writing statement.  ``x_lock_wait=False``
        # restores the historical try-once, no-wait policy.
        self.x_lock_wait = x_lock_wait
        self.x_lock_timeout = x_lock_timeout
        self.x_lock_retries = x_lock_retries
        self.x_lock_backoff = x_lock_backoff
        # QoS hook: the degradation governor attaches its CircuitBreaker
        # here while DEGRADED (and detaches it on recovery).  When the
        # breaker is open, _acquire_x collapses to a single no-wait
        # attempt so writer statements stop parking on a lock queue that
        # keeps timing out (DESIGN.md §10).
        self.breaker = None
        # Async (CDC) mode, configured by repro.cdc.AsyncMaintainer:
        # relevant changes are routed at prepare time — hot condition
        # parts (per the splitter) keep the eager X-lock path below,
        # cold ones skip the write-path lock entirely and ride the
        # outbox feed to the background drain (DESIGN.md §13).
        self.async_mode = False
        self.splitter = None
        self.outbox = None
        self._pending_routes: dict[int, list[bool]] = {}
        # X-lock transactions opened in the prepare phase for
        # statements outside a caller transaction, committed when the
        # corresponding change (or abort) arrives.  One statement is in
        # flight per thread at a time, so a per-thread stack pairs the
        # prepare with its change/abort even with concurrent writers.
        self._pending_txns: dict[int, list[Transaction]] = {}
        self._pending_mutex = threading.Lock()
        self._result_schema = template_result_schema(view.template, database)
        if strategy is MaintenanceStrategy.AUX_INDEX:
            self._check_aux_coverage()
        # Attributes of Ls' and Cjoin per relation: updates touching
        # none of them are free (Section 3.4, case 3).
        self._relevant_attrs: dict[str, set[str]] = {
            name: set() for name in view.template.relations
        }
        for qualified in view.template.expanded_select_list():
            relation, bare = qualified.split(".", 1)
            self._relevant_attrs[relation].add(bare)
        for join in view.template.joins:
            self._relevant_attrs[join.left_relation].add(join.left_column)
            self._relevant_attrs[join.right_relation].add(join.right_column)
        for condition in view.template.fixed_conditions:
            relation, bare = condition.column.split(".", 1)
            self._relevant_attrs[relation].add(bare)

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> "PMVMaintainer":
        """Start listening to the database's prepare/change/abort stream."""
        if not self._attached:
            self.database.add_prepare_listener(self.prepare_change)
            self.database.add_change_listener(self.handle_change)
            self.database.add_abort_listener(self.abort_change)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.database.remove_prepare_listener(self.prepare_change)
            self.database.remove_change_listener(self.handle_change)
            self.database.remove_abort_listener(self.abort_change)
            self._attached = False

    # -- change handling ----------------------------------------------------------

    def _needs_maintenance(self, change: Change) -> bool:
        """Whether this change will touch the PMV (and thus needs X)."""
        if change.relation not in self.view.template.relations:
            return False
        if change.kind is ChangeKind.INSERT:
            return False
        if change.kind is ChangeKind.UPDATE and not self._update_is_relevant(change):
            return False
        return True

    def _fire_fault(self, site: str) -> None:
        """Fault-injection site (repro.faults).  A raised exception here
        propagates exactly like an organic failure at this point —
        which is what the crash-recovery torture harness exercises."""
        hook = self.database.fault_hook
        if hook is not None:
            hook(site)

    def prepare_change(self, change: Change, txn: Transaction | None) -> None:
        """Prepare phase: take the X lock *before* the base write.

        Raises :class:`~repro.errors.LockError` if a reader currently
        holds its O2→O3 S lock, aborting the statement with the base
        relations untouched.
        """
        if not self._needs_maintenance(change):
            return
        if self.async_mode:
            hot = (
                self.splitter.is_hot(change, self.view)
                if self.splitter is not None
                else False
            )
            self._push_route(hot)
            if not hot:
                # Cold condition part: no write-path X lock — the
                # outbox feed carries the delta to the drain.
                return
        self._fire_fault("maintenance.prepare")
        if txn is not None:
            self._acquire_x(txn)
            return
        pending = self.database.begin()
        try:
            self._acquire_x(pending)
        except BaseException:
            # Pure cleanup, never a swallow: release the transaction so
            # no lock leaks, then re-raise whatever happened — including
            # KeyboardInterrupt/SystemExit and injected control
            # exceptions, which the old ``except Exception`` would have
            # left holding a half-prepared lock.
            pending.abort()
            raise
        self._push_pending(pending)

    def _acquire_x(self, txn: Transaction) -> None:
        """Take the view's X lock, waiting and retrying with backoff.

        A maintenance X request can repeatedly lose to reader S locks
        (queries pinning the view across O2→O3); a bounded
        retry-with-backoff rides out reader bursts before giving up and
        letting the LockError abort the writing statement.
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow_retries():
            # Breaker open (governor is DEGRADED and retries keep
            # losing): one immediate no-wait attempt, no parking on the
            # lock queue.  Success/failure still feeds the breaker so a
            # half-open probe can close it again.
            try:
                txn.lock_exclusive(self.view.name, wait=False)
            except LockError:
                breaker.record_failure()
                raise
            breaker.record_success()
            return
        attempts = self.x_lock_retries + 1 if self.x_lock_wait else 1
        for attempt in range(1, attempts + 1):
            try:
                txn.lock_exclusive(
                    self.view.name,
                    wait=self.x_lock_wait,
                    timeout=self.x_lock_timeout,
                )
                if breaker is not None:
                    breaker.record_success()
                return
            except LockError:
                if attempt >= attempts:
                    if breaker is not None:
                        breaker.record_failure()
                    raise
                self.view.metrics.maintenance_lock_retries += 1
                time.sleep(self.x_lock_backoff * attempt)

    def _push_route(self, hot: bool) -> None:
        ident = threading.get_ident()
        with self._pending_mutex:
            self._pending_routes.setdefault(ident, []).append(hot)

    def _pop_route(self) -> bool | None:
        ident = threading.get_ident()
        with self._pending_mutex:
            stack = self._pending_routes.get(ident)
            if not stack:
                return None
            hot = stack.pop()
            if not stack:
                del self._pending_routes[ident]
            return hot

    def _push_pending(self, pending: Transaction) -> None:
        ident = threading.get_ident()
        with self._pending_mutex:
            self._pending_txns.setdefault(ident, []).append(pending)

    def _pop_pending(self) -> Transaction | None:
        ident = threading.get_ident()
        with self._pending_mutex:
            stack = self._pending_txns.get(ident)
            if not stack:
                return None
            pending = stack.pop()
            if not stack:
                del self._pending_txns[ident]
            return pending

    def abort_change(self, change: Change, txn: Transaction | None) -> None:
        """The prepared statement failed: release any pending X lock."""
        if not self._needs_maintenance(change):
            return
        if self.async_mode and self._pop_route() is False:
            # Cold route: prepare took no lock, nothing to release.
            return
        if txn is None:
            pending = self._pop_pending()
            if pending is not None:
                pending.abort()

    def handle_change(self, change: Change, txn: Transaction | None) -> None:
        """React to one applied base-relation change (the ΔRi element)."""
        if change.relation not in self.view.template.relations:
            return
        metrics = self.view.metrics
        if change.kind is ChangeKind.INSERT:
            # Section 3.4 case 1: existing PMV tuples are unaffected.
            metrics.maintenance_inserts_ignored += 1
            return
        if change.kind is ChangeKind.UPDATE:
            assert change.old_row is not None and change.new_row is not None
            if not self._update_is_relevant(change):
                metrics.maintenance_updates_skipped += 1
                return
            if self.async_mode and not self._consume_route(change):
                return
            self._remove_derived(change.relation, change.old_row, txn)
            self._mark_eager_applied()
            return
        assert change.old_row is not None
        if self.async_mode and not self._consume_route(change):
            return
        metrics.maintenance_deletes += 1
        self._remove_derived(change.relation, change.old_row, txn)
        self._mark_eager_applied()

    def _consume_route(self, change: Change) -> bool:
        """Async mode: consume the prepare-time routing decision.

        True means hot — apply eagerly now (the X lock was taken in
        prepare) and mark the feed record so the drain skips it.
        False means cold — the delta is deferred to the drain.
        """
        hot = self._pop_route()
        if hot is None:
            # Change arrived without a prepare (maintainer attached
            # mid-statement): re-derive the route, defaulting cold.
            hot = (
                self.splitter.is_hot(change, self.view)
                if self.splitter is not None
                else False
            )
        if not hot:
            self.view.metrics.maintenance_deferred += 1
            return False
        return True

    def _mark_eager_applied(self) -> None:
        """Hot-path bookkeeping: the statement's feed record (the
        newest one — we are still inside its latched section) is
        already reflected in this view; the drain must not re-apply.
        When no earlier pending record still awaits this view, the
        freshness watermark advances immediately — an all-hot view
        reports zero staleness without waiting for a drain pass."""
        if self.async_mode and self.outbox is not None:
            lsn = self.outbox.last_lsn
            self.outbox.mark_applied(lsn, self.view.name)
            if self.outbox.applied_up_to(lsn, self.view.name):
                self.view.applied_lsn = max(self.view.applied_lsn, lsn)

    def _update_is_relevant(self, change: Change) -> bool:
        relevant = self._relevant_attrs[change.relation]
        old, new = change.old_row, change.new_row
        assert old is not None and new is not None
        return any(old[attr] != new[attr] for attr in relevant)

    # -- removal strategies ----------------------------------------------------------

    def _remove_derived(
        self, relation: str, old_row: Row, txn: Transaction | None
    ) -> None:
        # The X lock was taken in the prepare phase; a caller txn holds
        # it until its own commit, a pending internal txn until the
        # maintenance work below completes.
        pending = None
        if txn is None:
            pending = self._pop_pending()
            if pending is None:
                # Change arrived without a prepare (e.g. the maintainer
                # attached mid-statement): lock now, best effort — and
                # strictly no-wait, because this path runs inside the
                # statement latch where waiting could deadlock.
                pending = self.database.begin()
                pending.lock_exclusive(self.view.name)
        try:
            self._fire_fault("maintenance.apply")
            if self.strategy is MaintenanceStrategy.AUX_INDEX:
                self._remove_via_aux_index(relation, old_row)
            else:
                self._remove_via_delta_join(relation, old_row)
        except Exception as exc:
            if is_control_exception(exc):
                # Scheduler-deadlock markers and other control-flow
                # exceptions are not organic maintenance failures:
                # propagate without the fail-safe side effects, so the
                # fault harness sees the PMV exactly as the "crash"
                # left it.
                raise
            # Fail-safe: the removal may have stopped partway, so the
            # PMV could now serve stale tuples.  The empty subset is
            # always a correct subset, so clear the whole view before
            # re-raising.  (A SimulatedCrash is a BaseException and
            # bypasses this — after a crash the PMV restarts empty
            # anyway, which is the same fail-safe.)
            try:
                self.view.clear()
            except Exception:
                # The clear itself failing must not mask the original
                # error; account for the eaten secondary exception.
                self.view.metrics.swallowed_errors += 1
            self.view.metrics.maintenance_failsafe_clears += 1
            if self.async_mode:
                # The cleared (empty) view is a correct subset as of
                # *now*: the freshness watermark jumps to the current
                # LSN (DESIGN.md §13 watermark rules).
                self.view.applied_lsn = self.database.current_lsn()
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        finally:
            if pending is not None:
                pending.commit()

    def apply_async(self, change: Change) -> bool:
        """Apply one outbox delta — the async drain path.

        The caller (:class:`repro.cdc.AsyncMaintainer`) already holds
        the view's X lock and the statement latch.  Returns True when
        the delta was applied, False when an organic failure triggered
        the fail-safe clear — after which the (empty) view is fully
        fresh, so the caller advances the watermark either way.
        Control exceptions (simulated crashes) propagate untouched.
        """
        metrics = self.view.metrics
        old_row = change.old_row
        assert old_row is not None
        try:
            self._fire_fault("outbox.drain")
            if change.kind is ChangeKind.DELETE:
                metrics.maintenance_deletes += 1
            if self.strategy is MaintenanceStrategy.AUX_INDEX:
                self._remove_via_aux_index(change.relation, old_row)
            else:
                self._remove_via_delta_join(change.relation, old_row)
        except Exception as exc:
            if is_control_exception(exc):
                raise
            # Same fail-safe as the eager path: a half-done removal may
            # leave stale tuples, the empty subset never can.  Unlike a
            # writing statement there is nothing to abort here, so the
            # failure is absorbed (counted, never silent) and the drain
            # moves on.
            try:
                self.view.clear()
            except Exception:
                metrics.swallowed_errors += 1
            metrics.maintenance_failsafe_clears += 1
            self.view.applied_lsn = self.database.current_lsn()
            if self.breaker is not None:
                self.breaker.record_failure()
            return False
        metrics.maintenance_async_applied += 1
        return True

    def _remove_via_delta_join(self, relation: str, old_row: Row) -> None:
        """Main-text algorithm: join ΔRi against the other relations and
        drop each derived result tuple that is cached."""
        for result in self.delta_join(relation, old_row):
            self.view.remove_tuple(result)

    def _remove_via_aux_index(self, relation: str, old_row: Row) -> None:
        """Optimized algorithm: probe the PMV's auxiliary index on one of
        the deleted row's identifying attributes.

        Removes every cached tuple carrying the deleted row's value in
        that attribute.  This is a (safe) superset of the stale tuples
        whenever the attribute does not functionally determine the
        row — dropping a still-valid tuple only shrinks the cache, it
        can never make the PMV incorrect.
        """
        column = self._aux_column_for(relation)
        bare = column.split(".", 1)[1]
        for row in self.view.rows_with_value(column, old_row[bare]):
            self.view.remove_tuple(row)

    # -- delta join -----------------------------------------------------------------------

    def delta_join(self, relation: str, delta_row: Row) -> list[Row]:
        """Join one ΔRi row with the other base relations of the view."""
        return compute_delta_join(
            self.database, self.view.template, relation, delta_row, self._result_schema
        )

    # -- aux-index configuration ----------------------------------------------------------

    def _check_aux_coverage(self) -> None:
        for relation in self.view.template.relations:
            self._aux_column_for(relation)

    def _aux_column_for(self, relation: str) -> str:
        prefix = f"{relation}."
        for column in self.view.aux_index_columns:
            if column.startswith(prefix):
                return column
        raise MaintenanceError(
            f"AUX_INDEX maintenance needs an auxiliary index on an attribute of "
            f"{relation!r} (in Ls'); configure aux_index_columns on the view"
        )


def _condition_holds(condition, value: Any) -> bool:
    """Evaluate a single-attribute fixed condition against a raw value."""
    from repro.engine.predicate import EqualityDisjunction

    if isinstance(condition, EqualityDisjunction):
        return value in condition.values
    return any(iv.contains_value(value) for iv in condition.intervals)
