"""``repro.core`` — the partial materialized view method (the paper's
contribution): condition parts, discretization, Operation O1
decomposition, the PMV structure with pluggable replacement, the
O1/O2/O3 executor, deferred maintenance, traditional-MV baselines, and
the analytical maintenance cost model."""

from repro.core.aggregates import (
    AggregatePMVExecutor,
    AggregateResult,
    AggregateSpec,
    aggregate_rows,
)
from repro.core.condition import (
    BasicConditionPart,
    BcpKey,
    ConditionPart,
    Dimension,
    EqualityDim,
    IntervalDim,
)
from repro.core.costmodel import CostParameters, CostPoint, MaintenanceCostModel
from repro.core.decompose import bcp_of_row, decompose
from repro.core.discretize import BasicIntervals, Discretization, learn_dividing_values
from repro.core.duplicates import DuplicateSuppressor
from repro.core.executor import PMVExecutor, PMVQueryResult
from repro.core.manager import ManagedView, PMVManager
from repro.core.maintenance import (
    MaintenanceStrategy,
    PMVMaintainer,
    compute_delta_join,
    template_result_schema,
)
from repro.core.matview import MaterializedView, MVMaintenanceStats, SmallMaterializedView
from repro.core.metrics import PMVMetrics, QueryMetrics
from repro.core.nested import ExistsAccelerator, ExistsStats, ExistsVerdictSource
from repro.core.popularity import PopularityTracker, RankedPMVExecutor
from repro.core.replacement import (
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    ReferenceResult,
    ReplacementPolicy,
    TwoQueuePolicy,
    make_policy,
)
from repro.core.view import PartialMaterializedView, entries_for_budget

__all__ = [
    "AggregatePMVExecutor",
    "AggregateResult",
    "AggregateSpec",
    "BasicConditionPart",
    "BasicIntervals",
    "BcpKey",
    "ClockPolicy",
    "ConditionPart",
    "CostParameters",
    "CostPoint",
    "Dimension",
    "Discretization",
    "DuplicateSuppressor",
    "EqualityDim",
    "ExistsAccelerator",
    "ExistsStats",
    "ExistsVerdictSource",
    "FIFOPolicy",
    "IntervalDim",
    "LRUPolicy",
    "MaintenanceCostModel",
    "MaintenanceStrategy",
    "ManagedView",
    "PMVManager",
    "MaterializedView",
    "MVMaintenanceStats",
    "PMVExecutor",
    "PMVMaintainer",
    "PMVMetrics",
    "PMVQueryResult",
    "PartialMaterializedView",
    "PopularityTracker",
    "RankedPMVExecutor",
    "QueryMetrics",
    "ReferenceResult",
    "ReplacementPolicy",
    "SmallMaterializedView",
    "TwoQueuePolicy",
    "bcp_of_row",
    "compute_delta_join",
    "aggregate_rows",
    "decompose",
    "entries_for_budget",
    "learn_dividing_values",
    "make_policy",
    "template_result_schema",
]
