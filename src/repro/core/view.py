"""The partial materialized view data structure (Section 3.2).

A :class:`PartialMaterializedView` holds, for each resident basic
condition part, up to ``F`` result tuples (``ats`` rows carrying the
expanded select list ``Ls'``).  The bcp itself is "conceptual": it is
not stored with each tuple but recovered from the tuple's attribute
values when needed (:meth:`PartialMaterializedView.key_of_row`).

The entry dictionary keyed by the compact bcp key *is* the paper's
index ``I`` on bcp (a multi-attribute hash index when m > 1).  Which
bcps are resident is decided by a pluggable replacement policy — CLOCK
by default, the simplified 2Q as the better alternative of Section 3.5.

Optional *auxiliary indexes* over chosen tuple attributes support the
maintenance optimization referenced at the end of Section 3.4: deletes
and updates to base relations can locate affected cached tuples by an
in-memory probe instead of computing the delta join.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterator, Sequence

from repro.core.condition import BasicConditionPart, BcpKey, EqualityDim, IntervalDim
from repro.core.discretize import Discretization
from repro.core.metrics import PMVMetrics
from repro.core.replacement import ReferenceResult, ReplacementPolicy, make_policy
from repro.engine.row import Row
from repro.engine.template import QueryTemplate, SlotForm
from repro.errors import ViewCapacityError, ViewDefinitionError

__all__ = ["PartialMaterializedView", "entries_for_budget"]

KEY_SIZE_FRACTION = 0.04
"""Paper assumption (Section 4.1): storing a bcp costs 4% of storing
its F result tuples."""

NOMINAL_TUPLE_BYTES = 50
"""The paper's example average tuple size At (Section 3.2)."""


class _Entry:
    """One resident bcp's cached result tuples, stored compactly.

    The source of truth is ``values`` — a list of plain value tuples
    (the columnar pipeline's native currency, one object per tuple
    instead of a :class:`Row` with schema and hash slots) — plus
    ``bytes``, the entry's incrementally-maintained storage footprint,
    so eviction subtracts one number instead of re-sizing every tuple.
    ``_rows`` is a lazily-built, index-synchronized :class:`Row` cache
    for the row-level APIs (``lookup``/``cached_rows``/maintenance);
    the row path materializes an entry's Rows once and reuses them on
    every later query, preserving its zero-alloc hit behaviour.

    ``version`` counts mutations; ``_value_set`` caches a version-
    tagged frozenset of the values for the columnar executor's
    delivered-vs-derived ledger.  CPython set-to-set operations reuse
    the hashes stored in the table, so a hot entry's tuples are hashed
    once when first cached instead of once per query.
    """

    __slots__ = ("values", "bytes", "version", "_rows", "_value_set")

    def __init__(self) -> None:
        self.values: list[tuple] = []
        self.bytes = 0
        self.version = 0
        self._rows: list[Row] | None = None
        self._value_set: tuple[int, frozenset] | None = None


def entries_for_budget(
    upper_bound_bytes: int,
    tuples_per_entry: int,
    avg_tuple_bytes: int,
    key_fraction: float = KEY_SIZE_FRACTION,
    strict: bool = True,
) -> int:
    """Max entry count L for a storage budget UB (Section 3.2).

    The paper bounds ``UB >= L × F × At``; with the bcp key costing
    ``key_fraction`` of an entry's tuples, each entry costs
    ``(1 + key_fraction) × F × At`` bytes.

    ``strict=True`` (the constructor-time default) raises
    :class:`ViewCapacityError` when the budget holds no entry — a PMV
    that can never cache anything is a configuration mistake.  Runtime
    callers that *shrink* a live budget (the QoS governor) pass
    ``strict=False`` and get 0: an empty-but-alive PMV degrades
    gracefully instead of erroring mid-query.
    """
    if upper_bound_bytes <= 0 or tuples_per_entry <= 0 or avg_tuple_bytes <= 0:
        raise ViewCapacityError("budget, F, and At must all be positive")
    per_entry = (1.0 + key_fraction) * tuples_per_entry * avg_tuple_bytes
    entries = int(math.floor(upper_bound_bytes / per_entry))
    if entries < 1:
        if strict:
            raise ViewCapacityError(
                f"budget {upper_bound_bytes}B holds no entry of "
                f"{per_entry:.0f}B; raise UB or lower F"
            )
        return 0
    return entries


class PartialMaterializedView:
    """A bounded cache of hot query results for one template.

    Parameters
    ----------
    template:
        The ``qt``-form template this PMV serves.
    discretization:
        Basic intervals for the template's interval-form slots.
    tuples_per_entry:
        The paper's ``F``: at most this many result tuples are stored
        per basic condition part.
    max_entries:
        The paper's ``L`` (CLOCK) / ``N`` (2Q): how many bcps may be
        resident.  Derive it from a byte budget with
        :func:`entries_for_budget`.
    policy:
        A :class:`ReplacementPolicy` instance or a policy name
        (``"clock"``, ``"2q"``, ``"lru"``, ``"fifo"``).
    aux_index_columns:
        Tuple attributes to maintain auxiliary indexes on (for
        delta-join-free maintenance).
    upper_bound_bytes:
        The paper's UB: a hard byte budget for the view.  When set,
        entries are shed (policy's choice of victim) whenever the
        accounted size exceeds it — in addition to the ``max_entries``
        count bound.
    """

    def __init__(
        self,
        template: QueryTemplate,
        discretization: Discretization,
        tuples_per_entry: int,
        max_entries: int,
        policy: ReplacementPolicy | str = "clock",
        aux_index_columns: Sequence[str] = (),
        upper_bound_bytes: int | None = None,
    ) -> None:
        if discretization.template is not template:
            raise ViewDefinitionError("discretization belongs to a different template")
        if tuples_per_entry < 1:
            raise ViewCapacityError("F (tuples_per_entry) must be >= 1")
        self.template = template
        self.discretization = discretization
        self.tuples_per_entry = tuples_per_entry
        if isinstance(policy, str):
            policy = make_policy(policy, max_entries)
        elif policy.capacity != max_entries:
            raise ViewCapacityError(
                f"policy capacity {policy.capacity} != max_entries {max_entries}"
            )
        self.policy = policy
        self.max_entries = max_entries
        if upper_bound_bytes is not None and upper_bound_bytes < 1:
            raise ViewCapacityError("upper_bound_bytes must be positive")
        self.upper_bound_bytes = upper_bound_bytes
        # The operator-configured UB, untouched by runtime re-budgeting:
        # set_upper_bound moves upper_bound_bytes (the live budget), but
        # failover promotion must restore *this* value before serving.
        self.configured_upper_bound_bytes = upper_bound_bytes
        self.name = f"pmv_{template.name}"
        # Async (CDC) maintenance state — repro.cdc flips the flag and
        # owns the watermark.  ``applied_lsn`` is the newest feed LSN
        # whose delta is reflected here; an eagerly-maintained view is
        # always fresh and keeps the flag False (DESIGN.md §13).
        self.async_maintenance = False
        self.applied_lsn = 0
        self.metrics = PMVMetrics()
        # Structural latch: replacement-policy state and the entry dict
        # are not thread-safe on their own, and O2 probes run outside
        # the database's statement latch.  Re-entrant because clear()
        # nests discard_entry() and add_tuple() nests _enforce_budget().
        # Lock-ordering rule: nothing is awaited while holding it.
        self.latch = threading.RLock()
        self._entries: dict[BcpKey, _Entry] = {}
        self.current_bytes = 0
        self._stored_tuples = 0
        self._tuple_bytes = 0
        # Captured from the first stored tuple's schema: Row
        # materialization target, per-column byte sizers, and aux-index
        # column positions (every result tuple shares the expanded
        # select list ``Ls'``, so one capture covers the view's life).
        self._row_schema = None
        self._sizers: tuple | None = None
        self._aux_positions: tuple[tuple[str, int], ...] = ()
        # Nominal per-entry key charge: 4% of F tuples at the paper's
        # example At of 50 bytes.  Fixed at construction so admission
        # and eviction charge symmetrically.
        self._key_cost = max(
            1, int(KEY_SIZE_FRACTION * tuples_per_entry * NOMINAL_TUPLE_BYTES)
        )
        expanded = template.expanded_select_list()
        for column in aux_index_columns:
            if column not in expanded:
                raise ViewDefinitionError(
                    f"aux index column {column!r} is not in the expanded select list"
                )
        self._aux_columns = tuple(aux_index_columns)
        # column -> value -> {bcp key: row count}
        self._aux: dict[str, dict[Any, dict[BcpKey, int]]] = {
            column: {} for column in self._aux_columns
        }

    # -- bcp recovery -------------------------------------------------------------

    def key_of_row(self, row: Row) -> BcpKey:
        """Compact bcp key of the tuple ``row`` belongs to, recovered
        from its ``Cselect`` attribute values."""
        key: list[Any] = []
        for slot in self.template.slots:
            value = row[slot.column]
            if slot.form is SlotForm.INTERVAL:
                key.append(self.discretization.grid(slot.column).id_for_value(value))
            else:
                key.append(value)
        return tuple(key)

    def key_extractor(self, schema) -> "Callable[[Row], BcpKey]":
        """Precompile :meth:`key_of_row` against a fixed row schema.

        Column positions and grid lookups are resolved once; the
        returned closure maps a row to its bcp key with plain tuple
        indexing.  Use when many rows share one schema — e.g. every
        output row of one plan — where per-row name resolution is pure
        overhead.
        """
        steps = []
        for slot in self.template.slots:
            position = schema.position(slot.column)
            if slot.form is SlotForm.INTERVAL:
                steps.append(
                    (position, self.discretization.grid(slot.column).id_for_value)
                )
            else:
                steps.append((position, None))
        frozen = tuple(steps)

        def extract(row: Row) -> BcpKey:
            values = row.values
            return tuple(
                values[position] if id_of is None else id_of(values[position])
                for position, id_of in frozen
            )

        return extract

    def values_key_extractor(self, schema) -> "Callable[[tuple], BcpKey]":
        """Like :meth:`key_extractor` but mapping bare value tuples —
        the columnar path's bcp recovery, with no ``Row`` in sight."""
        steps = []
        for slot in self.template.slots:
            position = schema.position(slot.column)
            if slot.form is SlotForm.INTERVAL:
                steps.append(
                    (position, self.discretization.grid(slot.column).id_for_value)
                )
            else:
                steps.append((position, None))
        frozen = tuple(steps)

        def extract(values: tuple) -> BcpKey:
            return tuple(
                values[position] if id_of is None else id_of(values[position])
                for position, id_of in frozen
            )

        return extract

    def bcp_of_row(self, row: Row) -> BasicConditionPart:
        """Full :class:`BasicConditionPart` for the tuple ``row``."""
        dims = []
        for slot in self.template.slots:
            value = row[slot.column]
            if slot.form is SlotForm.INTERVAL:
                grid = self.discretization.grid(slot.column)
                basic_id = grid.id_for_value(value)
                dims.append(IntervalDim(slot.column, grid.interval(basic_id), basic_id))
            else:
                dims.append(EqualityDim(slot.column, value))
        return BasicConditionPart(tuple(dims))

    # -- residency / replacement ----------------------------------------------------

    def reference(self, key: BcpKey) -> ReferenceResult:
        """Record one appearance of a bcp (Operations O1/O2).

        Admission creates an (initially empty) entry; evictions drop
        the victims' cached tuples.
        """
        with self.latch:
            result = self.policy.reference(key)
            if result.resident_before and not result.evicted:
                # Hit fast path: a resident bcp already has its entry and
                # (for every shipped policy) a hit never evicts.
                return result
            for victim in result.evicted:
                self._drop_entry(victim)
                self.metrics.entries_evicted += 1
            if result.admitted and key not in self._entries:
                self._entries[key] = _Entry()
                self.current_bytes += self._key_cost
            return result

    def contains(self, key: BcpKey) -> bool:
        """Whether the bcp is resident (its entry can serve tuples)."""
        return key in self._entries

    def lookup(self, key: BcpKey) -> list[Row] | None:
        """Cached tuples of a resident bcp, or ``None`` on a miss.

        This is the probe of the paper's index ``I`` in Operation O2.
        Returns a copy so callers cannot mutate the entry.
        """
        with self.latch:
            entry = self._entries.get(key)
            return list(self._rows_of(entry)) if entry is not None else None

    def cached_rows(self, key: BcpKey) -> list[Row] | None:
        """Like :meth:`lookup` but returns the live entry Row cache.

        The executor's O2 hot path probes resident entries once per
        query; copying the entry there is pure overhead.  Callers MUST
        treat the result as read-only — it is the entry's own cache.
        """
        entry = self._entries.get(key)
        return self._rows_of(entry) if entry is not None else None

    def cached_values(self, key: BcpKey) -> list[tuple] | None:
        """A resident bcp's live value-tuple list (columnar O2 probe).

        No ``Row`` objects are touched.  Callers MUST treat the result
        as read-only — it is the entry's backing store.
        """
        entry = self._entries.get(key)
        return entry.values if entry is not None else None

    def cached_value_set(self, key: BcpKey) -> frozenset | None:
        """A resident bcp's values as a cached frozenset, or ``None``.

        The columnar ledger builds its delivered-tuple set from these:
        the frozenset is rebuilt only when the entry mutates (version-
        tagged), and CPython's set-to-set merge reuses the stored
        hashes, so a hot entry's tuples are hashed once in its
        lifetime, not once per query.  Note a frozenset collapses
        duplicate tuples — callers must compare its length against the
        entry's tuple count before treating it as the exact multiset.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        cached = entry._value_set
        if cached is None or cached[0] != entry.version:
            fs = frozenset(entry.values)
            entry._value_set = cached = (entry.version, fs)
        return cached[1]

    def tuple_count(self, key: BcpKey) -> int:
        """The counter ``cj`` base value: tuples stored for this bcp."""
        entry = self._entries.get(key)
        return len(entry.values) if entry is not None else 0

    # -- tuple storage -----------------------------------------------------------------

    def add_tuple(self, key: BcpKey, row: Row) -> bool:
        """Store one result tuple under a *resident* bcp (Operation O3).

        Returns False (and stores nothing) when the bcp is not resident
        or already holds ``F`` tuples.
        """
        with self.latch:
            entry = self._entries.get(key)
            if entry is None:
                return False
            values_list = entry.values
            if len(values_list) >= self.tuples_per_entry:
                self.metrics.tuples_rejected_full += 1
                return False
            if self._row_schema is None:
                self._capture_schema(row.schema)
            values = row.values
            values_list.append(values)
            entry.version += 1
            rows = entry._rows
            if rows is not None:
                rows.append(row)
            size = row.byte_size()
            entry.bytes += size
            self.current_bytes += size
            self._stored_tuples += 1
            self._tuple_bytes += size
            self.metrics.tuples_cached += 1
            self._aux_add(key, values)
            self._enforce_budget()
            return True

    def add_value_tuple(self, key: BcpKey, values: tuple, schema) -> bool:
        """Columnar twin of :meth:`add_tuple`: store one result *value
        tuple* under a resident bcp, no ``Row`` object involved.

        ``schema`` describes the tuple's columns (captured once for Row
        materialization and byte sizing).  Same residency/F semantics
        and metrics as :meth:`add_tuple`.
        """
        with self.latch:
            entry = self._entries.get(key)
            if entry is None:
                return False
            values_list = entry.values
            if len(values_list) >= self.tuples_per_entry:
                self.metrics.tuples_rejected_full += 1
                return False
            if self._row_schema is None:
                self._capture_schema(schema)
            values_list.append(values)
            entry.version += 1
            rows = entry._rows
            if rows is not None:
                rows.append(Row(values, self._row_schema))
            size = self._values_size(values)
            entry.bytes += size
            self.current_bytes += size
            self._stored_tuples += 1
            self._tuple_bytes += size
            self.metrics.tuples_cached += 1
            self._aux_add(key, values)
            self._enforce_budget()
            return True

    def remove_tuple(self, row: Row) -> bool:
        """Remove one occurrence of ``row`` (maintenance path).

        The owning bcp is recovered from the tuple's attributes; True
        if a cached occurrence was removed.
        """
        key = self.key_of_row(row)
        with self.latch:
            entry = self._entries.get(key)
            if entry is None or not entry.values:
                return False
            try:
                i = entry.values.index(row.values)
            except ValueError:
                return False
            values = entry.values.pop(i)
            entry.version += 1
            rows = entry._rows
            if rows is not None:
                del rows[i]
            size = row.byte_size()
            entry.bytes -= size
            self.current_bytes -= size
            self._stored_tuples -= 1
            self._tuple_bytes -= size
            self.metrics.maintenance_tuples_removed += 1
            self._aux_remove(key, values)
            return True

    def discard_entry(self, key: BcpKey) -> bool:
        """Forcibly drop a bcp and its tuples (maintenance/testing)."""
        with self.latch:
            self.policy.discard(key)
            return self._drop_entry(key)

    def clear(self) -> int:
        """Drop every entry, returning the PMV to the empty state.

        An empty PMV is always correct (the empty subset of the
        containing MV), so this is the fail-safe of last resort when
        maintenance fails partway — and the restart state after a
        crash.  Returns the number of entries dropped.
        """
        with self.latch:
            dropped = 0
            for key in list(self._entries):
                self.discard_entry(key)
                dropped += 1
            return dropped

    def set_upper_bound(self, upper_bound_bytes: int | None) -> None:
        """Re-budget a *live* PMV (the QoS governor's shrink/restore).

        Unlike the constructor, a runtime shrink never raises: a budget
        too small for even one entry simply sheds everything and leaves
        the view empty-but-alive (the empty subset is always correct),
        refilling from queries once the budget is restored.
        """
        if upper_bound_bytes is not None and upper_bound_bytes < 1:
            upper_bound_bytes = 1
        with self.latch:
            self.upper_bound_bytes = upper_bound_bytes
            self._enforce_budget()

    def _enforce_budget(self) -> None:
        """Shed whole entries while the UB byte budget is exceeded.

        The replacement policy picks the victims, so budget pressure
        evicts the same cold bcps that count pressure would.
        """
        if self.upper_bound_bytes is None:
            return
        while self.current_bytes > self.upper_bound_bytes and self._entries:
            victim = self.policy.force_evict()
            if victim is None:
                break
            self._drop_entry(victim)
            self.metrics.entries_evicted += 1

    # -- aux indexes ---------------------------------------------------------------------

    @property
    def aux_index_columns(self) -> tuple[str, ...]:
        return self._aux_columns

    def entries_with_value(self, column: str, value: Any) -> list[BcpKey]:
        """Bcp keys whose cached tuples contain ``value`` in ``column``.

        Probing this instead of computing the delta join is the
        Section 3.4 maintenance optimization.
        """
        if column not in self._aux:
            raise ViewDefinitionError(f"no aux index on {column!r}")
        return list(self._aux[column].get(value, ()))

    def rows_with_value(self, column: str, value: Any) -> list[Row]:
        """Cached tuples whose ``column`` equals ``value``."""
        out: list[Row] = []
        for key in self.entries_with_value(column, value):
            entry = self._entries.get(key)
            if entry is None:
                continue
            for row in self._rows_of(entry):
                if row[column] == value:
                    out.append(row)
        return out

    def _aux_add(self, key: BcpKey, values: tuple) -> None:
        for column, position in self._aux_positions:
            bucket = self._aux[column].setdefault(values[position], {})
            bucket[key] = bucket.get(key, 0) + 1

    def _aux_remove(self, key: BcpKey, values: tuple) -> None:
        for column, position in self._aux_positions:
            value = values[position]
            bucket = self._aux[column].get(value)
            if not bucket or key not in bucket:
                continue
            if bucket[key] <= 1:
                del bucket[key]
                if not bucket:
                    del self._aux[column][value]
            else:
                bucket[key] -= 1

    # -- internals ----------------------------------------------------------------------

    def _capture_schema(self, schema) -> None:
        """Bind the result schema (first stored tuple wins): compile
        per-column byte sizers and aux-index positions against it."""
        self._row_schema = schema
        self._sizers = tuple(col.dtype.byte_size for col in schema.columns)
        self._aux_positions = tuple(
            (column, schema.position(column)) for column in self._aux_columns
        )

    def _values_size(self, values: tuple) -> int:
        """Byte footprint of one value tuple (same arithmetic as
        :meth:`Row.byte_size`, via the precompiled sizers)."""
        total = 0
        for sizer, value in zip(self._sizers, values):
            total += sizer(value)
        return total

    def _rows_of(self, entry: _Entry) -> list[Row]:
        """The entry's Row-materialized form, built lazily and kept in
        step with its value list."""
        rows = entry._rows
        if rows is None or len(rows) != len(entry.values):
            schema = self._row_schema
            entry._rows = rows = [Row(values, schema) for values in entry.values]
        return rows

    def _drop_entry(self, key: BcpKey) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        values_list = entry.values
        if values_list:
            if self._aux_positions:
                for values in values_list:
                    self._aux_remove(key, values)
            # Vectorized accounting: the entry carries its own byte
            # total, so eviction is O(1) in tuple sizing.
            self.current_bytes -= entry.bytes
            self._stored_tuples -= len(values_list)
            self._tuple_bytes -= entry.bytes
        self.current_bytes -= self._key_cost
        return True

    @property
    def average_tuple_bytes(self) -> int:
        """Observed At: average size of the currently cached tuples."""
        if not self._stored_tuples:
            return NOMINAL_TUPLE_BYTES
        return max(1, self._tuple_bytes // self._stored_tuples)

    # -- inspection --------------------------------------------------------------------

    @property
    def row_schema(self):
        """The result schema captured from the first stored tuple, or
        ``None`` while the view is empty.  The columnar executor uses
        it to compile tuple-position predicates and to materialize
        :class:`Row` objects at the client boundary."""
        return self._row_schema

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def stored_tuple_count(self) -> int:
        return self._stored_tuples

    def entries(self) -> Iterator[tuple[BcpKey, list[Row]]]:
        for key, entry in self._entries.items():
            yield key, list(self._rows_of(entry))

    def entry_values(self) -> Iterator[tuple[BcpKey, list[tuple]]]:
        """Iterate entries as live value-tuple lists (read-only), the
        columnar counterpart of :meth:`entries`."""
        for key, entry in self._entries.items():
            yield key, entry.values

    def check_invariants(self) -> None:
        """Internal consistency checks (used by tests).

        - every entry holds at most F tuples;
        - residency agrees between the policy and the entry dict;
        - every cached tuple actually belongs to its entry's bcp.
        """
        if (
            self.upper_bound_bytes is not None
            and len(self._entries) > 1
            and self.current_bytes > self.upper_bound_bytes
        ):
            raise ViewCapacityError(
                f"view holds {self.current_bytes}B > UB {self.upper_bound_bytes}B"
            )
        for key, entry in self._entries.items():
            if len(entry.values) > self.tuples_per_entry:
                raise ViewCapacityError(
                    f"entry {key!r} holds {len(entry.values)} > F tuples"
                )
            if not self.policy.contains(key):
                raise ViewDefinitionError(f"entry {key!r} not resident in policy")
            if entry.values and self._row_schema is None:
                raise ViewDefinitionError(
                    f"entry {key!r} holds tuples but no schema was captured"
                )
            for row in self._rows_of(entry):
                if self.key_of_row(row) != key:
                    raise ViewDefinitionError(
                        f"tuple {row!r} stored under wrong bcp {key!r}"
                    )
        for key in self.policy.resident_keys():
            if key not in self._entries:
                raise ViewDefinitionError(f"policy-resident {key!r} has no entry")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartialMaterializedView({self.name!r}, entries={self.entry_count}/"
            f"{self.max_entries}, F={self.tuples_per_entry}, "
            f"tuples={self.stored_tuple_count})"
        )
