"""Query handling through a PMV: Operations O1, O2, O3 (Section 3.3).

Given a bound query, :class:`PMVExecutor`:

- **O1** breaks ``Cselect`` into non-overlapping condition parts;
- **O2** takes an S lock on the PMV, probes the bcp index for each
  part's containing bcp, and returns the cached tuples that satisfy
  the query as *immediate partial results*, recording them in the
  duplicate suppressor ``DS``;
- **O3** runs the full (blocking) plan, suppresses the tuples the user
  already received, returns the remainder, and opportunistically fills
  or refreshes the PMV "for free" — at most ``F`` tuples per bcp,
  guarded by the per-bcp counters ``cj``.

The executor separately measures the *overhead* of the PMV code paths
(O1 + O2 + O3's checking) and the full execution time, which is what
Figures 8-10 of the paper report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.decompose import decompose
from repro.core.duplicates import DuplicateSuppressor
from repro.core.metrics import QueryMetrics
from repro.core.view import PartialMaterializedView
from repro.engine.database import Database
from repro.engine.row import Row
from repro.engine.template import Query
from repro.engine.transactions import Transaction
from repro.errors import PMVError

__all__ = ["PMVQueryResult", "PMVExecutor"]


@dataclass
class PMVQueryResult:
    """Everything one PMV-mediated query produced.

    ``partial_rows`` were delivered immediately from the PMV (O2);
    ``remaining_rows`` came from full execution (O3).  Together they
    are exactly the query's full answer, each tuple delivered once.
    Rows carry the expanded select list ``Ls'``; :meth:`user_rows`
    projects down to the user-visible ``Ls``.
    """

    query: Query
    partial_rows: list[Row] = field(default_factory=list)
    remaining_rows: list[Row] = field(default_factory=list)
    metrics: QueryMetrics = field(default_factory=QueryMetrics)

    def all_rows(self) -> list[Row]:
        """Every result tuple, partial results first."""
        return self.partial_rows + self.remaining_rows

    def user_rows(self) -> list[Row]:
        """The full answer projected to the original select list Ls."""
        names = self.query.template.select_list
        return [row.project(names) for row in self.all_rows()]

    def ordered_rows(
        self,
        order_by: Sequence[str],
        descending: bool = False,
        partial_first: bool = True,
    ) -> list[Row]:
        """The answer sorted by ``order_by`` columns (Section 3.6's
        ORDER BY handling).

        With ``partial_first`` (the default), the immediately-available
        partial results are sorted among themselves and presented ahead
        of the (sorted) remainder — the "minor changes in the user
        interface" the paper describes: the user sees an ordered
        prefix right away and an ordered continuation after full
        execution.  With ``partial_first=False`` the complete answer is
        globally sorted (available only after O3, like a traditional
        ORDER BY).
        """

        def sort_key(row: Row):
            return tuple(row[column] for column in order_by)

        if partial_first:
            return sorted(self.partial_rows, key=sort_key, reverse=descending) + sorted(
                self.remaining_rows, key=sort_key, reverse=descending
            )
        return sorted(self.all_rows(), key=sort_key, reverse=descending)

    @property
    def had_partial_results(self) -> bool:
        return bool(self.partial_rows)


class PMVExecutor:
    """Executes queries of one template through its PMV."""

    def __init__(
        self,
        database: Database,
        view: PartialMaterializedView,
        clock=time.perf_counter,
    ) -> None:
        self.database = database
        self.view = view
        self._clock = clock

    # -- public API --------------------------------------------------------------

    def execute(
        self,
        query: Query,
        txn: Transaction | None = None,
        distinct: bool = False,
        on_partial: Callable[[list[Row]], None] | None = None,
    ) -> PMVQueryResult:
        """Run ``query`` through O1/O2/O3.

        With ``distinct=True`` the Section 3.6 variant is used: only
        distinct tuples are delivered (from both the PMV and full
        execution).  ``on_partial`` is invoked with the partial result
        rows the moment O2 completes — i.e. before full execution
        starts — which is how an application streams the immediate
        results to its user.
        """
        self._check_template(query)
        own_txn = txn is None
        if own_txn:
            txn = self.database.begin(read_only=True)
        try:
            result = self._execute_locked(query, txn, distinct, on_partial)
        finally:
            if own_txn:
                txn.commit()  # releases the S lock (strict 2PL)
        return result

    def preview(self, query: Query, txn: Transaction | None = None) -> PMVQueryResult:
        """Operations O1+O2 only: the immediately available partial
        results, with full execution *skipped entirely*.

        This is the paper's Benefit 2: a user who finds the partial
        results unsatisfactory (and will refine the query) terminates
        early, sparing the RDBMS the whole blocking execution.  The
        preview performs no base-relation I/O and does not refresh the
        PMV; ``remaining_rows`` stays empty.
        """
        self._check_template(query)
        own_txn = txn is None
        if own_txn:
            txn = self.database.begin(read_only=True)
        try:
            result = self._preview_locked(query, txn)
        finally:
            if own_txn:
                txn.commit()
        return result

    def _check_template(self, query: Query) -> None:
        if query.template is not self.view.template:
            raise PMVError(
                f"query is from template {query.template.name!r}, "
                f"but this executor serves {self.view.template.name!r}"
            )

    def execute_without_pmv(self, query: Query) -> tuple[list[Row], float]:
        """Baseline: traditional blocking execution, no PMV involved.

        Returns ``(rows, execution_seconds)``.
        """
        start = self._clock()
        rows = self.database.run(query, blocking=True)
        return rows, self._clock() - start

    # -- the three operations ------------------------------------------------------

    def _preview_locked(self, query: Query, txn: Transaction) -> PMVQueryResult:
        clock = self._clock
        view = self.view
        result = PMVQueryResult(query=query)
        start = clock()
        parts = decompose(query, view.discretization)
        result.metrics.condition_parts = len(parts)
        txn.lock_shared(view.name)
        seen_keys: set[tuple] = set()
        for part in parts:
            key = part.containing.key
            first_sighting = key not in seen_keys
            seen_keys.add(key)
            if first_sighting:
                reference = view.reference(key)
                if not reference.resident_before:
                    continue
                result.metrics.bcp_hits += 1
            cached = view.lookup(key) or []
            for row in cached:
                if part.is_basic or part.matches(row):
                    result.partial_rows.append(row)
        result.metrics.partial_tuples = len(result.partial_rows)
        elapsed = clock() - start
        result.metrics.partial_latency_seconds = elapsed
        result.metrics.overhead_seconds = elapsed
        view.metrics.record_query(result.metrics)
        return result

    def _execute_locked(
        self,
        query: Query,
        txn: Transaction,
        distinct: bool,
        on_partial: Callable[[list[Row]], None] | None = None,
    ) -> PMVQueryResult:
        clock = self._clock
        view = self.view
        result = PMVQueryResult(query=query)
        metrics = result.metrics

        # ---- Operation O1: Cselect -> condition parts -------------------
        overhead_start = clock()
        parts = decompose(query, view.discretization)
        metrics.condition_parts = len(parts)

        # ---- Operation O2: return cached partial results -----------------
        # Section 3.6's locking protocol: hold an S lock on the PMV from
        # O2 through O3 so no concurrent maintenance can invalidate the
        # partial results already delivered.
        txn.lock_shared(view.name)
        ds = DuplicateSuppressor()
        counters: dict[tuple, int] = {}
        delivered_distinct: set[Row] = set()
        # Several parts may share one containing bcp (a query interval
        # split inside a single basic interval); the bcp appears in
        # this query's Cselect *once*, so it is referenced once — this
        # matters for 2Q, whose A1→Am promotion requires a reappearance
        # in a *different* query.
        parts_by_key: dict[tuple, list] = {}
        for part in parts:
            parts_by_key.setdefault(part.containing.key, []).append(part)
        for key, key_parts in parts_by_key.items():
            reference = view.reference(key)
            if reference.resident_before:
                metrics.bcp_hits += 1
                cached = view.lookup(key) or []
                counters[key] = len(cached)
                for row in cached:
                    # A cached tuple belongs to bcp_j; it satisfies the
                    # query's Cselect iff it also lies in one of the
                    # (non-overlapping) parts bcp_j contains.
                    if any(part.is_basic or part.matches(row) for part in key_parts):
                        if distinct:
                            if row in delivered_distinct:
                                continue
                            delivered_distinct.add(row)
                        result.partial_rows.append(row)
                        ds.add(row)
            else:
                counters[key] = view.tuple_count(key)
        metrics.partial_tuples = len(result.partial_rows)
        overhead = clock() - overhead_start
        metrics.partial_latency_seconds = overhead
        if on_partial is not None:
            # Stream the immediate partial results to the caller before
            # full execution begins (the callback's time is the user's,
            # not PMV overhead).
            on_partial(list(result.partial_rows))

        # ---- Operation O3: full execution + dedup + PMV refresh ----------
        execution_start = clock()
        plan = self.database.plan(query, blocking=True)
        seen_distinct: set[Row] = set()
        f_limit = view.tuples_per_entry
        for row in plan.execute():
            check_start = clock()
            if distinct:
                if row in seen_distinct:
                    overhead += clock() - check_start
                    continue
                seen_distinct.add(row)
            if ds.consume(row):
                # The user already received this occurrence in O2.
                overhead += clock() - check_start
                continue
            result.remaining_rows.append(row)
            # Refresh the PMV "for free": find the containing bcp and
            # store the tuple if its per-bcp budget cj < F allows.
            key = view.key_of_row(row)
            cj = counters.get(key)
            if cj is None:
                cj = view.tuple_count(key)
            if cj < f_limit and view.add_tuple(key, row):
                counters[key] = cj + 1
            else:
                counters[key] = cj
            overhead += clock() - check_start
        execution_seconds = clock() - execution_start

        # Transactional consistency invariant: everything delivered in
        # O2 must have been re-derived by O3.
        ds.assert_empty()

        metrics.remaining_tuples = len(result.remaining_rows)
        metrics.overhead_seconds = overhead
        metrics.execution_seconds = execution_seconds
        view.metrics.record_query(metrics)
        return result
