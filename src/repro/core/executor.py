"""Query handling through a PMV: Operations O1, O2, O3 (Section 3.3).

Given a bound query, :class:`PMVExecutor`:

- **O1** breaks ``Cselect`` into non-overlapping condition parts;
- **O2** takes an S lock on the PMV, probes the bcp index for each
  part's containing bcp, and returns the cached tuples that satisfy
  the query as *immediate partial results*, recording them in the
  duplicate suppressor ``DS``;
- **O3** runs the full (blocking) plan, suppresses the tuples the user
  already received, returns the remainder, and opportunistically fills
  or refreshes the PMV "for free" — at most ``F`` tuples per bcp,
  guarded by the per-bcp counters ``cj``.

The executor separately measures the *overhead* of the PMV code paths
(O1 + O2 + O3's checking) and the full execution time, which is what
Figures 8-10 of the paper report.

Concurrency: the PMV is an accelerator, never a correctness
dependency.  When the Section 3.6 S lock cannot be granted within the
grace period (a maintenance X lock is in flight), the executor does
NOT fail the query — it *bypasses* the PMV and falls back to plain
blocking execution, counting the event as ``pmv_bypassed_lock``.
Operation O3 runs as one latched critical section on the database's
statement latch, which makes the completion of full execution the
query's serialization point; the optional ``on_o3`` callback fires
inside that section so a checker can record the serialization order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.decompose import DecompositionCache, decompose, group_parts
from repro.core.duplicates import DuplicateSuppressor
from repro.core.metrics import QueryMetrics
from repro.core.view import PartialMaterializedView
from repro.engine.database import Database
from repro.engine.row import Row
from repro.engine.template import Query
from repro.engine.transactions import Transaction
from repro.errors import LockError, PMVError

__all__ = ["PMVQueryResult", "PMVExecutor", "DEFAULT_LOCK_GRACE"]

DEFAULT_LOCK_GRACE = 0.2
"""How long a query waits for the PMV's S lock before bypassing the
view.  Long enough to ride out a maintenance X lock's critical
section, short enough that degraded service stays interactive."""


@dataclass
class PMVQueryResult:
    """Everything one PMV-mediated query produced.

    ``partial_rows`` were delivered immediately from the PMV (O2);
    ``remaining_rows`` came from full execution (O3).  Together they
    are exactly the query's full answer, each tuple delivered once.
    Rows carry the expanded select list ``Ls'``; :meth:`user_rows`
    projects down to the user-visible ``Ls``.
    """

    query: Query
    partial_rows: list[Row] = field(default_factory=list)
    remaining_rows: list[Row] = field(default_factory=list)
    metrics: QueryMetrics = field(default_factory=QueryMetrics)
    complete: bool = True
    """False when a deadline budget cut full execution short: the
    answer is an explicitly-marked *subset* of the full answer (never
    silently incomplete — this flag is the paper's partial-answer
    serving mode made into a first-class result state)."""
    degraded_reason: str | None = None
    """Why the answer is incomplete: ``"deadline-skip"`` (O3 never
    started) or ``"deadline-abandon"`` (O3 stopped at a cooperative
    batch checkpoint).  ``None`` for complete answers."""
    completeness_estimate: float | None = None
    """Rough fraction of the full answer delivered, derived from the
    view's historical tuples-per-query — a quality signal for the
    client, not a guarantee.  ``None`` when no basis exists yet."""
    staleness: int | None = None
    """Freshness stamp for async-maintained views: an upper bound on
    how many LSNs the cached contribution may trail the current state
    (``current LSN − applied LSN`` at seal time — the replica-lag
    honesty model applied to CDC maintenance, DESIGN.md §13).  ``0``
    means provably fresh (converged watermark, or the answer came
    entirely from full execution); ``None`` on eagerly-maintained
    views, which are always fresh by construction."""
    applied_lsn: int | None = None
    """The view's applied-LSN watermark the answer was served at
    (``None`` on eagerly-maintained views)."""

    def all_rows(self) -> list[Row]:
        """Every result tuple, partial results first."""
        return self.partial_rows + self.remaining_rows

    def user_rows(self) -> list[Row]:
        """The full answer projected to the original select list Ls."""
        names = self.query.template.select_list
        return [row.project(names) for row in self.all_rows()]

    def ordered_rows(
        self,
        order_by: Sequence[str],
        descending: bool = False,
        partial_first: bool = True,
    ) -> list[Row]:
        """The answer sorted by ``order_by`` columns (Section 3.6's
        ORDER BY handling).

        With ``partial_first`` (the default), the immediately-available
        partial results are sorted among themselves and presented ahead
        of the (sorted) remainder — the "minor changes in the user
        interface" the paper describes: the user sees an ordered
        prefix right away and an ordered continuation after full
        execution.  With ``partial_first=False`` the complete answer is
        globally sorted (available only after O3, like a traditional
        ORDER BY).
        """

        def sort_key(row: Row):
            return tuple(row[column] for column in order_by)

        if partial_first:
            return sorted(self.partial_rows, key=sort_key, reverse=descending) + sorted(
                self.remaining_rows, key=sort_key, reverse=descending
            )
        return sorted(self.all_rows(), key=sort_key, reverse=descending)

    @property
    def had_partial_results(self) -> bool:
        return bool(self.partial_rows)


DEFAULT_O1_CACHE_SIZE = 256
"""Default capacity of the per-executor O1 decomposition memo."""


class PMVExecutor:
    """Executes queries of one template through its PMV.

    Three hot-path knobs, all on by default:

    ``o1_cache_size``
        Capacity of the LRU decomposition memo (Operation O1 is a pure
        function of the bound ``Cselect``); ``0`` disables memoization
        and re-derives every decomposition from scratch.
    ``use_plan_cache``
        Bind the query against the database's compiled-plan cache
        instead of re-planning from the template each time.
    ``batched``
        Drive Operation O3 through the plan's batch iterator, sampling
        the overhead clock once per batch rather than twice per row,
        and hoist O2's per-part ``is_basic`` evaluation out of the
        per-cached-row loop.
    ``columnar``
        Run O2/O3 over the engine's :class:`ColumnBatch` pipeline: the
        whole hot path moves plain value tuples (O2 delivers live entry
        value lists by reference, O3 deduplicates with set algebra over
        value tuples) and :class:`Row` objects are materialized only at
        the :class:`PMVQueryResult` client boundary.  ``columnar=False``
        restores the row-at-a-time pipeline, which the equivalence
        suite and the hot-path benchmark compare against.

    Turning them all off reproduces the original per-row, re-derive-
    everything path — the baseline the hot-path benchmark compares
    against.
    """

    def __init__(
        self,
        database: Database,
        view: PartialMaterializedView,
        clock=time.perf_counter,
        o1_cache_size: int = DEFAULT_O1_CACHE_SIZE,
        use_plan_cache: bool = True,
        batched: bool = True,
        columnar: bool = True,
        lock_wait: bool = True,
        lock_timeout: float = DEFAULT_LOCK_GRACE,
        freshness_bound: int | None = None,
    ) -> None:
        self.database = database
        self.view = view
        self._clock = clock
        self.o1_cache = (
            DecompositionCache(o1_cache_size) if o1_cache_size > 0 else None
        )
        self.use_plan_cache = use_plan_cache
        self.batched = batched
        self.columnar = columnar
        # Compiled tuple-position matchers for non-basic part groups,
        # keyed by the (hashable, frozen) parts tuple; bounded so a
        # pathological workload cannot grow it without limit.
        self._part_matchers: dict[tuple, Callable[[tuple], bool]] = {}
        # Memoized bcp-key extractor for the columnar refresh: every
        # plan of one template shares a root schema, so the extractor
        # compiles once, not once per query with fresh rows.
        self._values_key_of: Callable[[tuple], tuple] | None = None
        self._values_key_schema = None
        # S-lock acquisition policy: wait up to ``lock_timeout`` seconds
        # for the view's S lock, then bypass the PMV instead of failing
        # the query.  ``lock_wait=False`` restores the historical
        # try-once policy (still bypassing, never raising).
        self.lock_wait = lock_wait
        self.lock_timeout = lock_timeout
        # Freshness policy for async-maintained views (DESIGN.md §13):
        # when the view's applied-LSN lag exceeds this many positions,
        # execute() bypasses the PMV and serves a fresh complete answer
        # from full execution (``pmv_bypassed_stale``).  None (the
        # default) serves at any lag — every answer still carries its
        # staleness stamp.  Ignored for eagerly-maintained views.
        self.freshness_bound = freshness_bound

    # -- public API --------------------------------------------------------------

    def execute(
        self,
        query: Query,
        txn: Transaction | None = None,
        distinct: bool = False,
        on_partial: Callable[[list[Row]], None] | None = None,
        on_o3: Callable[[Query], None] | None = None,
        deadline=None,
    ) -> PMVQueryResult:
        """Run ``query`` through O1/O2/O3.

        With ``distinct=True`` the Section 3.6 variant is used: only
        distinct tuples are delivered (from both the PMV and full
        execution).  ``on_partial`` is invoked with the partial result
        rows the moment O2 completes — i.e. before full execution
        starts — which is how an application streams the immediate
        results to its user.  ``on_o3`` is invoked (with the query)
        inside the latched full-execution section, i.e. at the query's
        serialization point; the interleaving checker uses it to build
        the serialization op-log.  For a deadline-degraded answer the
        callback still fires inside a latched section — the degraded
        answer's serialization point — so op-log checkers can place it.

        ``deadline`` (a :class:`repro.qos.Deadline`) bounds full
        execution: O1/O2 always run, but O3 is skipped when the budget
        is already spent and abandoned at the next batch checkpoint
        when it runs out mid-scan.  The result then carries
        ``complete=False`` plus a degraded-reason marker; every row
        delivered is still a true result (DESIGN.md §10).

        Never raises :class:`LockError`: if the view's S lock cannot be
        obtained within the grace period, the query silently bypasses
        the PMV (``metrics.bypassed_lock``).
        """
        self._check_template(query)
        own_txn = txn is None
        if own_txn:
            txn = self.database.begin(read_only=True)
        try:
            result = self._execute_locked(
                query, txn, distinct, on_partial, on_o3, deadline
            )
        finally:
            if own_txn:
                txn.commit()  # releases the S lock (strict 2PL)
        return result

    def preview(self, query: Query, txn: Transaction | None = None) -> PMVQueryResult:
        """Operations O1+O2 only: the immediately available partial
        results, with full execution *skipped entirely*.

        This is the paper's Benefit 2: a user who finds the partial
        results unsatisfactory (and will refine the query) terminates
        early, sparing the RDBMS the whole blocking execution.  The
        preview performs no base-relation I/O and does not refresh the
        PMV; ``remaining_rows`` stays empty.

        If the S lock cannot be obtained (maintenance in flight) the
        preview degrades to *no* partial results — it never runs a
        blocking execution and never raises :class:`LockError`; the
        event is counted as ``pmv_bypassed_lock``.
        """
        self._check_template(query)
        own_txn = txn is None
        if own_txn:
            txn = self.database.begin(read_only=True)
        try:
            result = self._preview_locked(query, txn)
        finally:
            if own_txn:
                txn.commit()
        return result

    def _check_template(self, query: Query) -> None:
        if query.template is not self.view.template:
            raise PMVError(
                f"query is from template {query.template.name!r}, "
                f"but this executor serves {self.view.template.name!r}"
            )

    def _decompose(self, query: Query, metrics: QueryMetrics):
        """Operation O1, through the memo when one is configured."""
        cache = self.o1_cache
        if cache is None:
            return decompose(query, self.view.discretization)
        hits_before = cache.hits
        parts = cache.decompose(query, self.view.discretization)
        metrics.o1_cache_hit = cache.hits > hits_before
        return parts

    def _decompose_grouped(self, query: Query, metrics: QueryMetrics):
        """Operation O1 plus the O2-ready part groups, memoized when
        a cache is configured."""
        cache = self.o1_cache
        if cache is None:
            parts = decompose(query, self.view.discretization)
            return parts, group_parts(parts)
        hits_before = cache.hits
        parts, groups = cache.decompose_grouped(query, self.view.discretization)
        metrics.o1_cache_hit = cache.hits > hits_before
        return parts, groups

    def execute_without_pmv(self, query: Query) -> tuple[list[Row], float]:
        """Baseline: traditional blocking execution, no PMV involved.

        Returns ``(rows, execution_seconds)``.
        """
        start = self._clock()
        rows = self.database.run(query, blocking=True)
        return rows, self._clock() - start

    # -- the three operations ------------------------------------------------------

    def _lock_view_or_bypass(self, txn: Transaction, metrics: QueryMetrics) -> bool:
        """Take the Section 3.6 S lock on the view, or report a bypass.

        Returns ``True`` with the lock held, or ``False`` (setting
        ``metrics.bypassed_lock``) when the lock was denied or the wait
        timed out.  The LockError never reaches the client — this is
        the O2 lock-denial bugfix: the PMV accelerates queries, it must
        never fail them.
        """
        try:
            txn.lock_shared(
                self.view.name, wait=self.lock_wait, timeout=self.lock_timeout
            )
        except LockError:  # includes DeadlockError timeouts
            metrics.bypassed_lock = True
            return False
        return True

    def _beyond_freshness_bound(self) -> bool:
        """Whether the view's applied-LSN lag exceeds the bound."""
        bound = self.freshness_bound
        if bound is None or not self.view.async_maintenance:
            return False
        return self.database.current_lsn() - self.view.applied_lsn > bound

    def _stamp_freshness(self, result: PMVQueryResult) -> None:
        """Stamp an answer with its applied-LSN age (async views only).

        The stamp is a true upper bound: the current LSN is read at (or
        after) the answer's serialization point, so any cached tuple
        delivered was applied at watermark ``applied_lsn`` and can
        trail truth by at most ``staleness`` positions.  An answer that
        bypassed the PMV (stale or lock bypass) came entirely from full
        execution under the latch — fresh as of its serialization
        point, staleness 0.
        """
        view = self.view
        if not view.async_maintenance:
            return
        metrics = result.metrics
        if metrics.bypassed_stale or metrics.bypassed_lock:
            result.applied_lsn = self.database.current_lsn()
            result.staleness = 0
            return
        applied = view.applied_lsn
        result.applied_lsn = applied
        result.staleness = max(0, self.database.current_lsn() - applied)

    def _preview_locked(self, query: Query, txn: Transaction) -> PMVQueryResult:
        clock = self._clock
        view = self.view
        result = PMVQueryResult(query=query)
        start = clock()
        parts, groups = self._decompose_grouped(query, result.metrics)
        result.metrics.condition_parts = len(parts)
        if not self._lock_view_or_bypass(txn, result.metrics):
            # Degrade to an empty preview: no lock means the cached
            # contents may be mutated under us, and a preview by
            # definition must not fall back to blocking execution.
            elapsed = clock() - start
            result.metrics.partial_latency_seconds = elapsed
            result.metrics.overhead_seconds = elapsed
            self._stamp_freshness(result)
            view.metrics.record_query(result.metrics)
            return result
        # One group per containing bcp: the bcp is referenced once and
        # its entry probed once; a non-resident key is skipped outright
        # instead of being re-probed for every part that maps to it.
        for group in groups:
            reference = view.reference(group.key)
            if not reference.resident_before:
                continue
            result.metrics.bcp_hits += 1
            cached = view.cached_rows(group.key) or ()
            if not cached:
                continue
            # A basic part coincides with the containing bcp, so every
            # cached row of the entry matches it — no per-row checks.
            if group.has_basic:
                result.partial_rows.extend(cached)
            else:
                key_parts = group.parts
                result.partial_rows.extend(
                    row
                    for row in cached
                    if any(part.matches(row) for part in key_parts)
                )
        result.metrics.partial_tuples = len(result.partial_rows)
        elapsed = clock() - start
        result.metrics.partial_latency_seconds = elapsed
        result.metrics.overhead_seconds = elapsed
        # A preview never claims completeness, so no bound enforcement:
        # the stamp alone tells the client how stale the snapshot may be.
        self._stamp_freshness(result)
        view.metrics.record_query(result.metrics)
        return result

    def _execute_bypassed(
        self,
        query: Query,
        result: PMVQueryResult,
        distinct: bool,
        on_partial: Callable[[list[Row]], None] | None,
        on_o3: Callable[[Query], None] | None,
        overhead_start: float,
        deadline=None,
    ) -> PMVQueryResult:
        """Plain blocking execution, PMV skipped (S lock unavailable).

        The answer is complete and correct — it just arrives without
        immediate partial results and without refreshing the view.
        Under a deadline the bypassed execution degrades like O3 does:
        an already-spent budget skips execution outright (an empty,
        explicitly-partial answer), and a budget spent mid-scan
        abandons at the next batch checkpoint, keeping the true rows
        produced so far.
        """
        clock = self._clock
        metrics = result.metrics
        metrics.partial_latency_seconds = clock() - overhead_start
        metrics.overhead_seconds = metrics.partial_latency_seconds
        if on_partial is not None:
            on_partial([])
        if deadline is not None and deadline.expired():
            return self._finish_degraded(result, "deadline-skip", on_o3)
        plan = self.database.plan(query, blocking=True, use_cache=self.use_plan_cache)
        execution_start = clock()
        rows: list[Row] = []
        abandoned = False
        with self.database.statement_latch:
            if deadline is None:
                rows = plan.run()
            else:
                for batch in plan.execute_batches():
                    rows.extend(batch)
                    if deadline.expired():
                        abandoned = True
                        break
            if on_o3 is not None and not abandoned:
                on_o3(query)
            if distinct:
                rows = list(dict.fromkeys(rows))
            result.remaining_rows = rows
            if abandoned:
                # Serialization point of the degraded answer: the rows
                # scanned so far are true results at this latched
                # instant.
                metrics.remaining_tuples = len(rows)
                metrics.execution_seconds = clock() - execution_start
                return self._finish_degraded(
                    result, "deadline-abandon", on_o3, latched=True
                )
        metrics.remaining_tuples = len(rows)
        metrics.execution_seconds = clock() - execution_start
        self._stamp_freshness(result)
        self.view.metrics.record_query(metrics)
        return result

    def _finish_degraded(
        self,
        result: PMVQueryResult,
        reason: str,
        on_o3: Callable[[Query], None] | None,
        latched: bool = False,
    ) -> PMVQueryResult:
        """Seal an answer whose deadline budget ran out.

        Marks the result as explicitly incomplete, estimates its
        completeness from the view's history, and gives the degraded
        answer a serialization point: ``on_o3`` fires inside a latched
        section (everything delivered is a true result there — cached
        tuples are pinned by the S lock, scanned rows were read under
        the latch), so op-log replays can verify the subset property.
        """
        metrics = result.metrics
        metrics.deadline_degraded = True
        result.complete = False
        result.degraded_reason = reason
        result.completeness_estimate = self._estimate_completeness(result)
        metrics.remaining_tuples = len(result.remaining_rows)
        if latched:
            if on_o3 is not None:
                on_o3(result.query)
        else:
            with self.database.statement_latch:
                if on_o3 is not None:
                    on_o3(result.query)
        self._stamp_freshness(result)
        self.view.metrics.record_query(metrics)
        return result

    def _estimate_completeness(self, result: PMVQueryResult) -> float | None:
        """Delivered tuples over the view's historical tuples/query.

        A coarse quality signal for clients of degraded answers; the
        view's lifetime averages are the only estimator that needs no
        extra bookkeeping.  ``None`` before any history exists.
        """
        snap = self.view.metrics.snapshot()
        if not snap["queries"]:
            return None
        expected = (snap["partial_tuples"] + snap["remaining_tuples"]) / snap["queries"]
        if expected <= 0:
            return None
        delivered = len(result.partial_rows) + len(result.remaining_rows)
        return min(1.0, delivered / expected)

    def _execute_locked(
        self,
        query: Query,
        txn: Transaction,
        distinct: bool,
        on_partial: Callable[[list[Row]], None] | None = None,
        on_o3: Callable[[Query], None] | None = None,
        deadline=None,
    ) -> PMVQueryResult:
        if self.columnar:
            return self._execute_columnar(
                query, txn, distinct, on_partial, on_o3, deadline
            )
        clock = self._clock
        view = self.view
        result = PMVQueryResult(query=query)
        metrics = result.metrics

        # ---- Operation O1: Cselect -> condition parts -------------------
        overhead_start = clock()
        if self.batched:
            parts, groups = self._decompose_grouped(query, metrics)
        else:
            parts = self._decompose(query, metrics)
            groups = None
        metrics.condition_parts = len(parts)

        # ---- Operation O2: return cached partial results -----------------
        # Section 3.6's locking protocol: hold an S lock on the PMV from
        # O2 through O3 so no concurrent maintenance can invalidate the
        # partial results already delivered.
        sched = self.database.scheduler
        if sched is not None:
            sched.switch("executor.o2")
        if self._beyond_freshness_bound():
            # The view trails the feed beyond the operator's tolerance:
            # serve a fresh complete answer from full execution instead
            # of bounded-stale cached tuples (DESIGN.md §13).
            metrics.bypassed_stale = True
            return self._execute_bypassed(
                query, result, distinct, on_partial, on_o3, overhead_start, deadline
            )
        if not self._lock_view_or_bypass(txn, metrics):
            return self._execute_bypassed(
                query, result, distinct, on_partial, on_o3, overhead_start, deadline
            )
        ds = DuplicateSuppressor()
        counters: dict[tuple, int] = {}
        delivered_distinct: set[Row] = set()
        # Several parts may share one containing bcp (a query interval
        # split inside a single basic interval); the bcp appears in
        # this query's Cselect *once*, so it is referenced once — this
        # matters for 2Q, whose A1→Am promotion requires a reappearance
        # in a *different* query.
        if groups is not None:
            # Hot path: the (possibly memoized) groups carry the bcp
            # key and the hoisted has_basic flag — a basic part
            # coincides with bcp_j, making every cached row a match
            # with no per-row predicate work.
            partial_extend = result.partial_rows.extend
            add_many = ds.add_many
            for group in groups:
                key = group.key
                reference = view.reference(key)
                if reference.resident_before:
                    metrics.bcp_hits += 1
                    cached = view.cached_rows(key) or ()
                    counters[key] = len(cached)
                    # A cached tuple belongs to bcp_j; it satisfies the
                    # query's Cselect iff it also lies in one of the
                    # (non-overlapping) parts bcp_j contains.
                    if group.has_basic:
                        matching = cached
                    else:
                        key_parts = group.parts
                        matching = [
                            row
                            for row in cached
                            if any(part.matches(row) for part in key_parts)
                        ]
                    if distinct:
                        kept = []
                        for row in matching:
                            if row not in delivered_distinct:
                                delivered_distinct.add(row)
                                kept.append(row)
                        matching = kept
                    partial_extend(matching)
                    add_many(matching)
                else:
                    counters[key] = view.tuple_count(key)
        else:
            parts_by_key: dict[tuple, list] = {}
            for part in parts:
                parts_by_key.setdefault(part.containing.key, []).append(part)
            for key, key_parts in parts_by_key.items():
                reference = view.reference(key)
                if reference.resident_before:
                    metrics.bcp_hits += 1
                    cached = view.lookup(key) or []
                    counters[key] = len(cached)
                    for row in cached:
                        # A cached tuple belongs to bcp_j; it satisfies
                        # the query's Cselect iff it also lies in one of
                        # the (non-overlapping) parts bcp_j contains.
                        if any(
                            part.is_basic or part.matches(row)
                            for part in key_parts
                        ):
                            if distinct:
                                if row in delivered_distinct:
                                    continue
                                delivered_distinct.add(row)
                            result.partial_rows.append(row)
                            ds.add(row)
                else:
                    counters[key] = view.tuple_count(key)
        metrics.partial_tuples = len(result.partial_rows)
        overhead = clock() - overhead_start
        metrics.partial_latency_seconds = overhead
        if on_partial is not None:
            # Stream the immediate partial results to the caller before
            # full execution begins (the callback's time is the user's,
            # not PMV overhead).
            on_partial(list(result.partial_rows))

        # ---- Deadline checkpoint: is there budget left for O3? -----------
        # O2 always runs (the PMV's partial answer is the product), but
        # a spent budget means the client asked us not to block: return
        # the partial answer now, explicitly marked incomplete.  The S
        # lock is still held, so every delivered tuple stays a current
        # true result through the degraded answer's serialization point.
        if deadline is not None and deadline.expired():
            return self._finish_degraded(result, "deadline-skip", on_o3)

        # ---- Operation O3: full execution + dedup + PMV refresh ----------
        # The whole of O3 is one critical section on the statement
        # latch: full execution then reads a consistent snapshot and its
        # completion is the query's serialization point (``on_o3``).
        # The S lock is already held, and the latch is never held while
        # waiting on a lock, so this cannot deadlock.
        if sched is not None:
            sched.switch("executor.o3")
        execution_start = clock()
        if self.use_plan_cache:
            plan = self.database.plan(query, blocking=True)
        else:
            plan = self.database.plan(query, blocking=True, use_cache=False)
        self.database.statement_latch.acquire()
        try:
            completed = self._run_o3(
                query, result, plan, ds, counters, distinct, execution_start, deadline
            )
            if not completed:
                # Abandoned at a batch checkpoint: seal the degraded
                # answer here, inside the latch — this instant is its
                # serialization point.
                return self._finish_degraded(
                    result, "deadline-abandon", on_o3, latched=True
                )
            if on_o3 is not None:
                on_o3(query)
        finally:
            self.database.statement_latch.release()
        self._stamp_freshness(result)
        view.metrics.record_query(metrics)
        return result

    def _run_o3(
        self,
        query: Query,
        result: PMVQueryResult,
        plan,
        ds: DuplicateSuppressor,
        counters: dict,
        distinct: bool,
        execution_start: float,
        deadline=None,
    ) -> bool:
        """The body of Operation O3 (caller holds the statement latch).

        Returns True when full execution ran to completion, False when
        a deadline abandoned it at a cooperative checkpoint — between
        scan batches on the batched path, between rows on the legacy
        path.  Deadline checks cost nothing when no deadline is set.
        """
        clock = self._clock
        view = self.view
        metrics = result.metrics
        overhead = metrics.partial_latency_seconds
        abandoned = False
        seen_distinct: set[Row] = set()
        f_limit = view.tuples_per_entry
        if self.batched:
            # Batched hot path: every plan output row carries the root
            # operator's schema, so the bcp key extractor is compiled
            # once; the overhead clock is sampled per batch (the checks
            # between the two samples are exactly the per-row checks of
            # the legacy path, minus the clock calls themselves).
            key_of = view.key_extractor(plan.root.schema)
            remaining_append = result.remaining_rows.append
            counters_get = counters.get
            tuple_count = view.tuple_count
            add_tuple = view.add_tuple
            consume_many = ds.consume_many
            for batch in plan.execute_batches():
                if deadline is not None and deadline.expired():
                    # Cooperative checkpoint between scan batches: the
                    # budget is spent, so abandon full execution and let
                    # the caller seal a degraded answer from what O2 and
                    # the batches so far delivered.
                    abandoned = True
                    break
                check_start = clock()
                if distinct:
                    kept = []
                    for row in batch:
                        if row not in seen_distinct:
                            seen_distinct.add(row)
                            kept.append(row)
                    batch = kept
                # Bulk dedup: one call strips every occurrence the user
                # already received in O2; for a fully-cached query the
                # whole batch is consumed and the refresh loop is empty.
                for row in consume_many(batch):
                    remaining_append(row)
                    # Refresh the PMV "for free": find the containing
                    # bcp and store the tuple if its budget cj < F allows.
                    key = key_of(row)
                    cj = counters_get(key)
                    if cj is None:
                        cj = tuple_count(key)
                    if cj < f_limit and add_tuple(key, row):
                        counters[key] = cj + 1
                    else:
                        counters[key] = cj
                overhead += clock() - check_start
        else:
            for row in plan.execute():
                if deadline is not None and deadline.expired():
                    abandoned = True
                    break
                check_start = clock()
                if distinct:
                    if row in seen_distinct:
                        overhead += clock() - check_start
                        continue
                    seen_distinct.add(row)
                if ds.consume(row):
                    # The user already received this occurrence in O2.
                    overhead += clock() - check_start
                    continue
                result.remaining_rows.append(row)
                # Refresh the PMV "for free": find the containing bcp and
                # store the tuple if its per-bcp budget cj < F allows.
                key = view.key_of_row(row)
                cj = counters.get(key)
                if cj is None:
                    cj = view.tuple_count(key)
                if cj < f_limit and view.add_tuple(key, row):
                    counters[key] = cj + 1
                else:
                    counters[key] = cj
                overhead += clock() - check_start
        execution_seconds = clock() - execution_start

        if not abandoned:
            # Transactional consistency invariant: everything delivered in
            # O2 must have been re-derived by O3.  (Holds under concurrency
            # too: the S lock excludes deletions of cached tuples until the
            # transaction ends, and insertions only add O3 rows.)  An
            # abandoned run legitimately leaves undelivered O2 occurrences
            # in the suppressor — the scan never reached them.
            if view.async_maintenance:
                # Async-maintained views legitimately serve bounded-stale
                # extras: a cold delete not yet drained leaves its derived
                # tuples cached.  Each leftover was a true result at some
                # LSN ≥ the view's watermark; count it, don't raise.
                metrics.stale_partial_tuples = len(ds)
            else:
                ds.assert_empty()

        metrics.remaining_tuples = len(result.remaining_rows)
        metrics.overhead_seconds = overhead
        metrics.execution_seconds = execution_seconds
        return not abandoned

    # -- the columnar pipeline -----------------------------------------------------

    def _part_matcher(self, parts: tuple) -> Callable[[tuple], bool]:
        """Compile a non-basic part group into one tuple-position test.

        A cached value tuple satisfies the group iff it lies in any of
        the group's (non-overlapping) condition parts; each dimension
        test is resolved to a ``(position, contains_value)`` pair
        against the view's captured result schema, so the hot loop
        indexes plain tuples instead of resolving column names.  The
        parts tuple is hashable (frozen dataclasses all the way down),
        so compiled matchers are memoized across queries.
        """
        matcher = self._part_matchers.get(parts)
        if matcher is not None:
            return matcher
        schema = self.view.row_schema
        compiled = tuple(
            tuple((schema.position(d.column), d.contains_value) for d in part.dims)
            for part in parts
        )
        if len(compiled) == 1:
            tests = compiled[0]
            if len(tests) == 1:
                position, test = tests[0]

                def matcher(t, position=position, test=test):
                    return test(t[position])

            else:

                def matcher(t, tests=tests):
                    return all(test(t[p]) for p, test in tests)

        else:

            def matcher(t, compiled=compiled):
                return any(
                    all(test(t[p]) for p, test in tests) for tests in compiled
                )

        if len(self._part_matchers) >= 512:
            self._part_matchers.clear()
        self._part_matchers[parts] = matcher
        return matcher

    def _execute_columnar(
        self,
        query: Query,
        txn: Transaction,
        distinct: bool,
        on_partial: Callable[[list[Row]], None] | None = None,
        on_o3: Callable[[Query], None] | None = None,
        deadline=None,
    ) -> PMVQueryResult:
        """O1/O2/O3 over the columnar batch pipeline.

        The clocked hot path never touches a :class:`Row`: O2 delivers
        resident entries as *references to their live value-tuple
        lists* (an O(1) append per bcp — no per-row duplicate-
        suppressor build), and O3 settles the delivered-vs-derived
        ledger once at the end with set algebra over value tuples.
        Rows are materialized at the client boundary only — after the
        overhead window closes — from the entry's lazily-cached Row
        list (``cached_rows``), which amortizes to a plain list extend
        on every hit after the first.
        """
        clock = self._clock
        view = self.view
        result = PMVQueryResult(query=query)
        metrics = result.metrics

        # ---- Operation O1: Cselect -> grouped condition parts ------------
        overhead_start = clock()
        parts, groups = self._decompose_grouped(query, metrics)
        metrics.condition_parts = len(parts)

        # ---- Operation O2: deliver cached partial results ----------------
        sched = self.database.scheduler
        if sched is not None:
            sched.switch("executor.o2")
        if self._beyond_freshness_bound():
            # See _execute_locked: beyond the freshness bound the PMV
            # is skipped for a fresh complete answer.
            metrics.bypassed_stale = True
            return self._execute_bypassed(
                query, result, distinct, on_partial, on_o3, overhead_start, deadline
            )
        if not self._lock_view_or_bypass(txn, metrics):
            return self._execute_bypassed(
                query, result, distinct, on_partial, on_o3, overhead_start, deadline
            )
        counters: dict[tuple, int] = {}
        # Chunks delivered to the user, in delivery order.  A chunk is
        # (bcp key, live entry value list) when the whole entry matched
        # (has_basic, no distinct filter) — the key lets the boundary
        # reuse the entry's cached Row list — or (None, fresh list) for
        # filtered deliveries.  Live chunks are strictly read-only and
        # are only *read* before any O3 refresh can grow them.
        partial_chunks: list[tuple[tuple | None, list]] = []
        delivered = 0
        delivered_distinct: set[tuple] = set()
        cached_values = view.cached_values
        tuple_count = view.tuple_count
        chunk_append = partial_chunks.append
        for group in groups:
            key = group.key
            reference = view.reference(key)
            if reference.resident_before:
                metrics.bcp_hits += 1
                values = cached_values(key)
                if values is None:
                    counters[key] = 0
                    continue
                counters[key] = n = len(values)
                if not n:
                    continue
                if group.has_basic:
                    # Every cached tuple of the entry matches: deliver
                    # the entry's backing list by reference.
                    matching = values
                    live_key = key
                else:
                    matcher = self._part_matcher(group.parts)
                    matching = [t for t in values if matcher(t)]
                    live_key = None
                if distinct:
                    kept = []
                    seen_add = delivered_distinct.add
                    for t in matching:
                        if t not in delivered_distinct:
                            seen_add(t)
                            kept.append(t)
                    matching = kept
                    live_key = None
                if matching:
                    chunk_append((live_key, matching))
                    delivered += len(matching)
            else:
                counters[key] = tuple_count(key)
        metrics.partial_tuples = delivered
        overhead = clock() - overhead_start

        # ---- Client boundary: materialize the partial Rows ---------------
        # Outside the overhead window (delivery, not checking) but
        # inside the partial latency the user observes.  A live chunk
        # reuses the entry's lazily-built Row cache — after an entry's
        # first hit this is one list extend, exactly what the row
        # pipeline paid; filtered chunks build fresh Rows.
        if partial_chunks:
            row_schema = view.row_schema
            partial_extend = result.partial_rows.extend
            for live_key, chunk in partial_chunks:
                rows = (
                    view.cached_rows(live_key) if live_key is not None else None
                )
                if rows is not None and len(rows) == len(chunk):
                    partial_extend(rows)
                else:
                    # The entry was evicted by a later group's reference
                    # (or never had a Row cache): the delivered chunk
                    # still holds the tuples as they were probed.
                    partial_extend(Row(t, row_schema) for t in chunk)
        metrics.partial_latency_seconds = clock() - overhead_start
        if on_partial is not None:
            on_partial(list(result.partial_rows))

        # ---- Deadline checkpoint: is there budget left for O3? -----------
        if deadline is not None and deadline.expired():
            return self._finish_degraded(result, "deadline-skip", on_o3)

        # ---- Operation O3: full execution + dedup + PMV refresh ----------
        if sched is not None:
            sched.switch("executor.o3")
        execution_start = clock()
        if self.use_plan_cache:
            plan = self.database.plan(query, blocking=True)
        else:
            plan = self.database.plan(query, blocking=True, use_cache=False)
        self.database.statement_latch.acquire()
        try:
            completed = self._run_o3_columnar(
                result,
                plan,
                partial_chunks,
                delivered,
                counters,
                distinct,
                overhead,
                execution_start,
                deadline,
            )
            if not completed:
                return self._finish_degraded(
                    result, "deadline-abandon", on_o3, latched=True
                )
            if on_o3 is not None:
                on_o3(query)
        finally:
            self.database.statement_latch.release()
        self._stamp_freshness(result)
        view.metrics.record_query(metrics)
        return result

    def _run_o3_columnar(
        self,
        result: PMVQueryResult,
        plan,
        partial_chunks: list,
        partial_count: int,
        counters: dict,
        distinct: bool,
        overhead: float,
        execution_start: float,
        deadline=None,
    ) -> bool:
        """The body of columnar O3 (caller holds the statement latch).

        Full execution streams :class:`ColumnBatch` objects; each batch
        contributes its value-tuple chunk (row-major transposition is
        execution work, done before the check window opens).  The
        delivered-vs-derived ledger is settled once, after the stream:

        - when both sides are duplicate-free (the overwhelmingly common
          case — and always true under ``distinct``), plain set algebra
          is exact: ``fresh = o3 − partial`` in plan order, and a
          non-empty ``partial − o3`` means the PMV served stale tuples
          (the :meth:`DuplicateSuppressor.assert_empty` invariant);
        - otherwise an exact multiset fallback replays the chunks
          through a :class:`DuplicateSuppressor` in value-tuple form.

        The PMV refresh runs *after* the ledger is read, so growing a
        live entry list can never corrupt a delivered chunk.  Returns
        False when a deadline abandoned the stream at a batch
        checkpoint; the chunks collected before expiry are still
        consumed and refreshed — they were delivered work.
        """
        clock = self._clock
        view = self.view
        metrics = result.metrics
        abandoned = False
        o3_chunks: list[list[tuple]] = []
        o3_count = 0
        seen: set | None = set() if distinct else None
        chunks_append = o3_chunks.append
        for cb in plan.execute_column_batches():
            if deadline is not None and deadline.expired():
                # Cooperative checkpoint between batches: the budget is
                # spent; seal a degraded answer from what was produced.
                abandoned = True
                break
            chunk = cb.tuples()
            if seen is None:
                if chunk:
                    chunks_append(chunk)
                    o3_count += len(chunk)
            else:
                # Distinct streams are deduplicated inside the check
                # window (the row path's seen_distinct filter).
                check_start = clock()
                kept = []
                kept_append = kept.append
                seen_add = seen.add
                for t in chunk:
                    if t not in seen:
                        seen_add(t)
                        kept_append(t)
                if kept:
                    chunks_append(kept)
                    o3_count += len(kept)
                overhead += clock() - check_start

        # ---- The ledger: one clocked settlement for the whole stream -----
        check_start = clock()
        completed = not abandoned
        fresh: list[tuple] = []
        if partial_count == 0:
            for chunk in o3_chunks:
                fresh.extend(chunk)
        else:
            # Delivered side: prefer the entries' version-tagged cached
            # frozensets — set-to-set merges reuse stored hashes, so a
            # hot entry's tuples are hashed once per residency, not
            # once per query.  A live chunk whose entry was evicted (or
            # that holds duplicate tuples, which a frozenset would
            # collapse) falls back to hashing the chunk itself.
            partial_set: "set | frozenset"
            if len(partial_chunks) == 1:
                live_key, chunk = partial_chunks[0]
                fs = (
                    view.cached_value_set(live_key)
                    if live_key is not None
                    else None
                )
                partial_set = (
                    fs if fs is not None and len(fs) == len(chunk) else set(chunk)
                )
            else:
                partial_set = set()
                partial_update = partial_set.update
                for live_key, chunk in partial_chunks:
                    fs = (
                        view.cached_value_set(live_key)
                        if live_key is not None
                        else None
                    )
                    partial_update(
                        fs if fs is not None and len(fs) == len(chunk) else chunk
                    )
            o3_set: set = set()
            for chunk in o3_chunks:
                o3_set.update(chunk)
            if len(partial_set) == partial_count and len(o3_set) == o3_count:
                # All-distinct on both sides: set difference is exact.
                need = o3_set - partial_set
                n_need = len(need)
                if n_need == o3_count:
                    # Nothing was delivered from this stream (cold
                    # bcps): every tuple is fresh, in plan order.
                    for chunk in o3_chunks:
                        fresh.extend(chunk)
                elif n_need:
                    fresh = [t for chunk in o3_chunks for t in chunk if t in need]
                # |partial − o3| = |partial| − |o3| + |need| when both
                # sides are duplicate-free: the invariant check is
                # count arithmetic, no second difference pass.
                if completed and partial_count - o3_count + n_need:
                    if view.async_maintenance:
                        # Bounded-stale extras of an async view (see
                        # _run_o3): accounted, not an invariant breach.
                        metrics.stale_partial_tuples = (
                            partial_count - o3_count + n_need
                        )
                    else:
                        leftover = partial_set - o3_set
                        raise PMVError(
                            f"DS not empty after O3: {len(leftover)} tuple(s) "
                            f"left, e.g. {next(iter(leftover))!r}; the PMV "
                            "delivered results full execution did not produce"
                        )
            else:
                # Duplicates present somewhere: exact multiset replay.
                ds = DuplicateSuppressor()
                add_batch = ds.add_batch
                for _live_key, chunk in partial_chunks:
                    add_batch(chunk)
                consume_batch = ds.consume_batch
                for chunk in o3_chunks:
                    fresh.extend(consume_batch(chunk))
                if completed:
                    if view.async_maintenance:
                        metrics.stale_partial_tuples = len(ds)
                    else:
                        ds.assert_empty()

        # ---- Refresh the PMV "for free" (after the ledger is read) -------
        if fresh:
            schema = plan.root.schema
            key_of = self._values_key_of
            if key_of is None or self._values_key_schema is not schema:
                key_of = view.values_key_extractor(schema)
                self._values_key_of = key_of
                self._values_key_schema = schema
            f_limit = view.tuples_per_entry
            counters_get = counters.get
            tuple_count = view.tuple_count
            add_value_tuple = view.add_value_tuple
            for t in fresh:
                key = key_of(t)
                cj = counters_get(key)
                if cj is None:
                    cj = tuple_count(key)
                if cj < f_limit and add_value_tuple(key, t, schema):
                    counters[key] = cj + 1
                else:
                    counters[key] = cj
        overhead += clock() - check_start

        # ---- Client boundary: materialize the remaining Rows -------------
        # Real work the row pipeline did during the scan, so it counts
        # as execution time, not PMV overhead.
        if fresh:
            schema = plan.root.schema
            result.remaining_rows = [Row(t, schema) for t in fresh]
        execution_seconds = clock() - execution_start

        metrics.remaining_tuples = len(fresh)
        metrics.overhead_seconds = overhead
        metrics.execution_seconds = execution_seconds
        return not abandoned
