"""Managing many PMVs at once.

The paper: "Many PMVs can reside in the RDBMS simultaneously" and "the
RDBMS cannot keep a MV for each frequently used query template" — the
whole point is that PMVs are cheap enough to keep one per hot template.
:class:`PMVManager` is that registry: it creates a PMV (plus executor
and maintainer) per template, routes incoming queries to the right
PMV by their template, and accounts for the fleet's total memory so an
operator can check the "RDBMS can afford storing many PMVs" claim
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.discretize import Discretization
from repro.core.executor import DEFAULT_O1_CACHE_SIZE, PMVExecutor, PMVQueryResult
from repro.core.maintenance import MaintenanceStrategy, PMVMaintainer
from repro.core.replacement import ReplacementPolicy
from repro.core.view import PartialMaterializedView
from repro.engine.database import Database
from repro.engine.template import Query, QueryTemplate
from repro.engine.transactions import Transaction
from repro.errors import PMVError

__all__ = ["ManagedView", "PMVManager"]


@dataclass
class ManagedView:
    """One template's PMV with its executor and maintainer."""

    view: PartialMaterializedView
    executor: PMVExecutor
    maintainer: PMVMaintainer


class PMVManager:
    """A registry of PMVs, one per query template."""

    def __init__(
        self,
        database: Database,
        maintenance_strategy: MaintenanceStrategy = MaintenanceStrategy.DELTA_JOIN,
    ) -> None:
        self.database = database
        self.maintenance_strategy = maintenance_strategy
        self._views: dict[str, ManagedView] = {}
        self._specs: dict[str, dict] = {}

    # -- lifecycle ------------------------------------------------------------

    def create_view(
        self,
        template: QueryTemplate,
        discretization: Discretization | None = None,
        tuples_per_entry: int = 3,
        max_entries: int = 10_000,
        policy: ReplacementPolicy | str = "clock",
        aux_index_columns: Sequence[str] = (),
        upper_bound_bytes: int | None = None,
        maintenance_strategy: MaintenanceStrategy | None = None,
        o1_cache_size: int = DEFAULT_O1_CACHE_SIZE,
        executor_options: dict | None = None,
        maintainer_options: dict | None = None,
    ) -> PartialMaterializedView:
        """Create, register, and wire a PMV for ``template``.

        Registers the template in the catalog when it is not yet known,
        attaches a maintainer, and makes the manager route the
        template's queries to the new view.  ``o1_cache_size`` sizes
        the executor's decomposition memo (0 disables it).
        ``executor_options``/``maintainer_options`` are extra keyword
        arguments for :class:`PMVExecutor` / :class:`PMVMaintainer` —
        e.g. the concurrency knobs ``lock_timeout`` and
        ``x_lock_retries`` (see DESIGN.md §8).
        """
        if template.name in self._views:
            raise PMVError(f"template {template.name!r} already has a PMV")
        if not self.database.catalog.has_relation(template.relations[0]):
            raise PMVError(
                f"template {template.name!r} references unknown relations"
            )
        from repro.errors import CatalogError

        try:
            self.database.catalog.template(template.name)
        except CatalogError:
            self.database.register_template(template)
        if discretization is None:
            discretization = Discretization(template)
        view = PartialMaterializedView(
            template,
            discretization,
            tuples_per_entry=tuples_per_entry,
            max_entries=max_entries,
            policy=policy,
            aux_index_columns=aux_index_columns,
            upper_bound_bytes=upper_bound_bytes,
        )
        strategy = maintenance_strategy or self.maintenance_strategy
        maintainer = PMVMaintainer(
            self.database, view, strategy=strategy, **(maintainer_options or {})
        ).attach()
        executor = PMVExecutor(
            self.database, view, o1_cache_size=o1_cache_size,
            **(executor_options or {}),
        )
        self._views[template.name] = ManagedView(view, executor, maintainer)
        if isinstance(policy, ReplacementPolicy):
            from repro.core.replacement import _POLICIES

            policy_name = next(
                (name for name, cls in _POLICIES.items() if type(policy) is cls),
                "clock",
            )
        else:
            policy_name = policy
        self._specs[template.name] = {
            "template": template,
            "discretization": discretization,
            "tuples_per_entry": tuples_per_entry,
            "max_entries": max_entries,
            "policy": policy_name,
            "aux_index_columns": tuple(aux_index_columns),
            "upper_bound_bytes": upper_bound_bytes,
            "maintenance_strategy": strategy,
            "o1_cache_size": o1_cache_size,
            "executor_options": dict(executor_options or {}),
            "maintainer_options": dict(maintainer_options or {}),
        }
        return view

    def drop_view(self, template_name: str) -> None:
        """Detach and forget the PMV of ``template_name``."""
        managed = self._views.pop(template_name, None)
        if managed is None:
            raise PMVError(f"no PMV for template {template_name!r}")
        self._specs.pop(template_name, None)
        managed.maintainer.detach()

    def view_specs(self) -> dict[str, dict]:
        """The creation parameters of every managed view, keyed by
        template name (policy instances reduced to their registered
        names).  Replication standbys mirror the primary's fleet from
        this — same templates, budgets, and strategies — so a promoted
        replica serves the identical view configuration."""
        return {name: dict(spec) for name, spec in self._specs.items()}

    # -- routing --------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        txn: Transaction | None = None,
        distinct: bool = False,
        on_o3=None,
        deadline=None,
    ) -> PMVQueryResult:
        """Run ``query`` through the PMV registered for its template.

        ``deadline`` is an optional :class:`~repro.qos.deadline.Deadline`
        budget: O2 always runs, but O3 is skipped or abandoned when the
        budget is spent and the answer comes back with
        ``result.complete`` False (DESIGN.md §10).
        """
        managed = self._views.get(query.template.name)
        if managed is None:
            raise PMVError(
                f"no PMV registered for template {query.template.name!r}"
            )
        return managed.executor.execute(
            query, txn=txn, distinct=distinct, on_o3=on_o3, deadline=deadline
        )

    # -- inspection --------------------------------------------------------------------

    def view(self, template_name: str) -> PartialMaterializedView:
        try:
            return self._views[template_name].view
        except KeyError:
            raise PMVError(f"no PMV for template {template_name!r}") from None

    def executor(self, template_name: str) -> PMVExecutor:
        try:
            return self._views[template_name].executor
        except KeyError:
            raise PMVError(f"no PMV for template {template_name!r}") from None

    def maintainer(self, template_name: str) -> PMVMaintainer:
        try:
            return self._views[template_name].maintainer
        except KeyError:
            raise PMVError(f"no PMV for template {template_name!r}") from None

    def managed(self) -> list[ManagedView]:
        """Every managed view with its executor and maintainer (the QoS
        governor iterates this to shrink/restore budgets fleet-wide)."""
        return list(self._views.values())

    def template_names(self) -> list[str]:
        return list(self._views)

    def __len__(self) -> int:
        return len(self._views)

    @property
    def total_bytes(self) -> int:
        """Combined accounted size of every managed PMV — the quantity
        behind the paper's "the memory can hold many PMVs"."""
        return sum(managed.view.current_bytes for managed in self._views.values())

    def summary(self) -> list[dict]:
        """Per-view status rows (for operator dashboards/tests)."""
        out = []
        for name, managed in self._views.items():
            view, metrics = managed.view, managed.view.metrics
            out.append(
                {
                    "template": name,
                    "entries": view.entry_count,
                    "tuples": view.stored_tuple_count,
                    "bytes": view.current_bytes,
                    "queries": metrics.queries,
                    "hit_probability": metrics.hit_probability,
                }
            )
        return out

    def check_invariants(self) -> None:
        for managed in self._views.values():
            managed.view.check_invariants()

    # -- failure handling ---------------------------------------------------------

    def clear_all(self) -> int:
        """Fail-safe reset: empty every managed PMV (each restarts
        correct-by-construction and refills from queries).  Returns the
        number of entries dropped across the fleet."""
        return sum(managed.view.clear() for managed in self._views.values())

    def verify_consistency(self) -> None:
        """Assert that no managed PMV could serve a tuple it shouldn't.

        Runs the fault-harness checker — every cached tuple of every
        view must be a current true result of its template (and the
        structural/bound invariants must hold).  Raises
        :class:`~repro.faults.check.InvariantViolation` on divergence.
        Used by tests and the crash-recovery torture harness.

        Async-maintained views are checked against the outbox
        high-watermark: while a view's applied LSN trails the current
        LSN it is *intentionally* stale (undrained feed records may
        leave bounded-stale extras cached), so only its structural
        invariants are enforced.  A view that claims convergence
        (watermark caught up) gets the full strict check — a lost or
        double-applied delta still surfaces as a phantom there.
        """
        from repro.faults.check import check_view_against_database

        high = self.database.current_lsn()
        for managed in self._views.values():
            view = managed.view
            allow_stale = view.async_maintenance and view.applied_lsn < high
            check_view_against_database(
                self.database, view, allow_stale=allow_stale
            )

    # -- async (CDC) maintenance -----------------------------------------------

    def enable_async_maintenance(
        self,
        template_names: Sequence[str] | None = None,
        outbox=None,
        splitter=None,
        drain_batch: int = 1,
    ):
        """Switch managed views to CDC-driven async maintenance.

        Creates (or adopts) a change outbox on the database, registers
        the named views (all of them by default) with a fresh
        :class:`~repro.cdc.AsyncMaintainer`, and returns it — the
        caller owns the drain cadence (call ``drain()`` /
        ``drain_to_convergence()``, or ``start()`` for a background
        pump).  ``splitter`` routes hot condition parts back to the
        eager path (DESIGN.md §13); ``drain_batch`` sets how many feed
        records one drain round applies per X-lock acquisition.
        """
        from repro.cdc import AsyncMaintainer

        async_maintainer = AsyncMaintainer(
            self.database, outbox=outbox, splitter=splitter, drain_batch=drain_batch
        )
        names = (
            list(template_names) if template_names is not None else list(self._views)
        )
        for name in names:
            if name not in self._views:
                raise PMVError(f"no PMV for template {name!r}")
            async_maintainer.register(self._views[name].maintainer)
        return async_maintainer
