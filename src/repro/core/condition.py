"""Condition parts and basic condition parts (paper Section 3.1).

A *condition part* is an m-tuple ``(d1, …, dm)`` matching the template's
slot order, where each ``di`` is either an equality dimension
(``R.a = b``) or an interval dimension (``b < R.a < c``).  A *basic*
condition part is one whose every interval dimension is exactly a basic
interval of the template's discretization.

Basic condition parts are stored compactly per the paper: equality
dimensions store the value itself, interval dimensions store the basic
interval's *id*.  That compact key (:attr:`BasicConditionPart.key`) is
what the PMV's bcp index hashes on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.engine.predicate import Interval
from repro.engine.row import Row
from repro.errors import ConditionError

__all__ = [
    "EqualityDim",
    "IntervalDim",
    "Dimension",
    "ConditionPart",
    "BasicConditionPart",
    "BcpKey",
]

BcpKey = tuple[Any, ...]
"""Compact storage form of a basic condition part: one value or basic
interval id per dimension."""


@dataclass(frozen=True)
class EqualityDim:
    """``column = value`` — the equality form of a dimension."""

    column: str
    value: Any

    def contains_value(self, value: Any) -> bool:
        return value == self.value

    def matches(self, row: Row) -> bool:
        return row[self.column] == self.value

    def __str__(self) -> str:
        return f"{self.column}={self.value!r}"


@dataclass(frozen=True)
class IntervalDim:
    """``column ∈ interval`` — the interval form of a dimension.

    ``basic_id`` identifies the basic interval containing this
    dimension's interval; for a basic dimension the interval *is* the
    basic interval.
    """

    column: str
    interval: Interval
    basic_id: int

    def contains_value(self, value: Any) -> bool:
        return self.interval.contains_value(value)

    def matches(self, row: Row) -> bool:
        return self.interval.contains_value(row[self.column])

    def __str__(self) -> str:
        return f"{self.column} in {self.interval} (bi#{self.basic_id})"


Dimension = Union[EqualityDim, IntervalDim]


@dataclass(frozen=True)
class BasicConditionPart:
    """A condition part aligned to the discretization grid.

    ``key`` is the compact storage form: the equality value for
    equality dimensions, the basic interval id for interval dimensions
    (Section 3.1's storage rule).
    """

    dims: tuple[Dimension, ...]

    @property
    def key(self) -> BcpKey:
        return tuple(
            d.value if isinstance(d, EqualityDim) else d.basic_id for d in self.dims
        )

    @property
    def arity(self) -> int:
        return len(self.dims)

    def matches(self, row: Row) -> bool:
        """Whether a result tuple belongs to this basic condition part."""
        return all(d.matches(row) for d in self.dims)

    def __str__(self) -> str:
        return "(" + ", ".join(str(d) for d in self.dims) + ")"


@dataclass(frozen=True)
class ConditionPart:
    """One non-overlapping piece of a query's ``Cselect`` (Operation O1).

    Every condition part is contained in exactly one basic condition
    part — its :attr:`containing` bcp.  :attr:`is_basic` tells whether
    the part *is* that bcp (then cached tuples of the bcp belong to the
    query with no further checking).
    """

    dims: tuple[Dimension, ...]
    containing: BasicConditionPart

    def __post_init__(self) -> None:
        if len(self.dims) != self.containing.arity:
            raise ConditionError(
                "condition part and containing bcp have different arity"
            )

    @property
    def is_basic(self) -> bool:
        """Whether this part coincides with its containing bcp."""
        for dim, basic_dim in zip(self.dims, self.containing.dims):
            if isinstance(dim, EqualityDim):
                continue
            assert isinstance(basic_dim, IntervalDim)
            if dim.interval != basic_dim.interval:
                return False
        return True

    def matches(self, row: Row) -> bool:
        """Whether a result tuple belongs to this condition part."""
        return all(d.matches(row) for d in self.dims)

    def contained_in(self, other: BasicConditionPart) -> bool:
        """Paper's containment test: whenever our dims hold, other's do.

        Checked dimension-wise: an equality dim must equal the other's
        value or fall in its interval; an interval dim must be a
        sub-interval.
        """
        if len(self.dims) != other.arity:
            return False
        for dim, other_dim in zip(self.dims, other.dims):
            if isinstance(other_dim, EqualityDim):
                if not isinstance(dim, EqualityDim) or dim.value != other_dim.value:
                    return False
            else:
                if isinstance(dim, EqualityDim):
                    if not other_dim.interval.contains_value(dim.value):
                        return False
                elif not other_dim.interval.contains_interval(dim.interval):
                    return False
        return True

    def __str__(self) -> str:
        return "(" + ", ".join(str(d) for d in self.dims) + ")"
