"""Aggregate queries over PMVs (Section 3.6).

The paper notes that "with minor changes in the user interface, PMVs
can also be used to handle aggregate queries (e.g., group by)": the
partial results delivered from the PMV yield *partial aggregates* that
must be presented as provisional, and the full execution then delivers
the exact aggregates.  :class:`AggregatePMVExecutor` implements exactly
that: it runs a template query through the normal O1/O2/O3 pipeline and
exposes both the provisional group aggregates computed from the O2
partial tuples and the exact aggregates over the full answer.

Supported aggregate functions: ``count``, ``sum``, ``min``, ``max``,
``avg``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.executor import PMVExecutor, PMVQueryResult
from repro.engine.row import Row
from repro.engine.template import Query
from repro.errors import PMVError

__all__ = ["AggregateSpec", "AggregateResult", "AggregatePMVExecutor", "aggregate_rows"]

_FUNCTIONS = {"count", "sum", "min", "max", "avg"}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the select list: ``function(column) AS alias``.

    ``column=None`` means ``count(*)``.
    """

    function: str
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function not in _FUNCTIONS:
            raise PMVError(
                f"unsupported aggregate {self.function!r}; "
                f"choose from {sorted(_FUNCTIONS)}"
            )
        if self.function != "count" and self.column is None:
            raise PMVError(f"{self.function}() needs a column")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column if self.column else "*"
        return f"{self.function}({target})"


def aggregate_rows(
    rows: Sequence[Row],
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> dict[tuple, dict[str, Any]]:
    """Group ``rows`` by the ``group_by`` columns and aggregate.

    Returns ``{group_key: {output_name: value}}``.  NULL values are
    skipped by sum/min/max/avg and by count(column), per SQL semantics;
    count(*) counts every row.
    """
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row[col] for col in group_by)
        groups.setdefault(key, []).append(row)
    out: dict[tuple, dict[str, Any]] = {}
    for key, members in groups.items():
        values: dict[str, Any] = {}
        for spec in aggregates:
            if spec.function == "count" and spec.column is None:
                values[spec.output_name] = len(members)
                continue
            assert spec.column is not None
            observed = [row[spec.column] for row in members if row[spec.column] is not None]
            if spec.function == "count":
                values[spec.output_name] = len(observed)
            elif not observed:
                values[spec.output_name] = None
            elif spec.function == "sum":
                values[spec.output_name] = sum(observed)
            elif spec.function == "min":
                values[spec.output_name] = min(observed)
            elif spec.function == "max":
                values[spec.output_name] = max(observed)
            else:  # avg
                values[spec.output_name] = sum(observed) / len(observed)
        out[key] = values
    return out


@dataclass
class AggregateResult:
    """Partial (provisional) and exact group aggregates for one query.

    ``partial_groups`` comes from the tuples the PMV served in O2; the
    UI contract (the paper's "minor changes in the user interface") is
    that these are lower-bound/provisional values to show immediately.
    ``exact_groups`` is computed over the complete answer after O3.
    """

    query: Query
    group_by: tuple[str, ...]
    partial_groups: dict[tuple, dict[str, Any]] = field(default_factory=dict)
    exact_groups: dict[tuple, dict[str, Any]] = field(default_factory=dict)
    underlying: PMVQueryResult | None = None

    @property
    def had_partial_results(self) -> bool:
        return bool(self.partial_groups)

    def partial_coverage(self) -> float:
        """Fraction of final groups already visible in the partial
        aggregates — a UI-facing progress signal."""
        if not self.exact_groups:
            return 1.0 if not self.partial_groups else 0.0
        covered = sum(1 for key in self.exact_groups if key in self.partial_groups)
        return covered / len(self.exact_groups)


class AggregatePMVExecutor:
    """GROUP-BY execution over a PMV-backed template."""

    def __init__(self, executor: PMVExecutor) -> None:
        self.executor = executor

    def execute(
        self,
        query: Query,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> AggregateResult:
        """Run ``query`` and aggregate its answer.

        ``group_by`` columns must be in the expanded select list
        ``Ls'`` (they are attributes of the result tuples).
        """
        expanded = set(query.template.expanded_select_list())
        for column in group_by:
            if column not in expanded:
                raise PMVError(
                    f"group-by column {column!r} is not in the expanded select list"
                )
        for spec in aggregates:
            if spec.column is not None and spec.column not in expanded:
                raise PMVError(
                    f"aggregate column {spec.column!r} is not in the expanded select list"
                )
        result = self.executor.execute(query)
        partial = aggregate_rows(result.partial_rows, group_by, aggregates)
        exact = aggregate_rows(result.all_rows(), group_by, aggregates)
        return AggregateResult(
            query=query,
            group_by=tuple(group_by),
            partial_groups=partial,
            exact_groups=exact,
            underlying=result,
        )
