"""Traditional materialized-view baselines (Section 2).

Two baselines the paper contrasts PMVs with:

- :class:`MaterializedView` — the *containing* MV ``VM`` of Section 2.2
  (Figure 2): all join results for the template's ``Cjoin``, maintained
  *immediately* on every insert, delete, and update of a base relation.
  Doubles as a correctness oracle in tests (a query's answer is the MV
  filtered by its ``Cselect``) and as the MV side of the maintenance-
  cost comparison.
- :class:`SmallMaterializedView` — the per-hot-cell ``VsM`` of
  Section 2.3: all results of one fixed basic condition part, also
  immediately maintained.

Both count their maintenance work (delta joins computed, tuples
added/removed) so experiments can report it alongside the PMV's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.condition import BasicConditionPart
from repro.core.maintenance import compute_delta_join, template_result_schema
from repro.engine.database import Database
from repro.engine.row import Row
from repro.engine.template import Query, QueryTemplate
from repro.engine.transactions import Change, ChangeKind, Transaction
from repro.errors import ViewDefinitionError

__all__ = ["MaterializedView", "SmallMaterializedView", "MVMaintenanceStats"]


@dataclass
class MVMaintenanceStats:
    """Work counters for immediate MV maintenance."""

    delta_joins: int = 0
    tuples_added: int = 0
    tuples_removed: int = 0
    updates_handled: int = 0

    @property
    def total_operations(self) -> int:
        return self.delta_joins + self.tuples_added + self.tuples_removed


class _RowMultiset:
    """A counting multiset of rows (MVs are multisets, Section 3.1)."""

    def __init__(self) -> None:
        self._counts: dict[Row, int] = {}
        self._size = 0

    def add(self, row: Row) -> None:
        self._counts[row] = self._counts.get(row, 0) + 1
        self._size += 1

    def remove(self, row: Row) -> bool:
        count = self._counts.get(row, 0)
        if count == 0:
            return False
        if count == 1:
            del self._counts[row]
        else:
            self._counts[row] = count - 1
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size

    def __contains__(self, row: Row) -> bool:
        return self._counts.get(row, 0) > 0

    def rows(self) -> list[Row]:
        out: list[Row] = []
        for row, count in self._counts.items():
            out.extend([row] * count)
        return out


class MaterializedView:
    """The containing MV ``VM``: every ``Cjoin`` result, kept current.

    Create it *after* loading the base relations (or call
    :meth:`refresh`), then :meth:`attach` to maintain it immediately on
    every change — the behaviour whose cost Section 4.3 compares
    against PMV maintenance.
    """

    def __init__(self, database: Database, template: QueryTemplate) -> None:
        self.database = database
        self.template = template
        self.name = f"mv_{template.name}"
        self.schema = template_result_schema(template, database)
        self.stats = MVMaintenanceStats()
        self._rows = _RowMultiset()
        self._attached = False
        self.refresh()

    # -- content ---------------------------------------------------------------

    def refresh(self) -> None:
        """Recompute the full join result from scratch."""
        self._rows = _RowMultiset()
        template = self.template
        driver = template.relations[0]
        relation = self.database.catalog.relation(driver)
        for base_row in relation.scan_rows():
            for result in compute_delta_join(
                self.database, template, driver, base_row, self.schema
            ):
                self._rows.add(result)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def rows(self) -> list[Row]:
        return self._rows.rows()

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    # -- query answering -----------------------------------------------------------

    def answer(self, query: Query) -> list[Row]:
        """Answer a template query by filtering the MV with its Cselect.

        This is the classical answering-queries-using-views path; used
        as the correctness oracle in tests.
        """
        if query.template is not self.template:
            raise ViewDefinitionError("query is from a different template")
        return [row for row in self._rows.rows() if query.cselect.matches(row)]

    # -- immediate maintenance -------------------------------------------------------

    def attach(self) -> "MaterializedView":
        if not self._attached:
            self.database.add_change_listener(self.handle_change)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.database.remove_change_listener(self.handle_change)
            self._attached = False

    def handle_change(self, change: Change, txn: Transaction | None) -> None:
        """Immediate maintenance: unlike a PMV, *every* kind of change
        (including inserts) must be propagated at once."""
        if change.relation not in self.template.relations:
            return
        if change.kind is ChangeKind.INSERT:
            assert change.new_row is not None
            self._apply_delta(change.relation, change.new_row, adding=True)
        elif change.kind is ChangeKind.DELETE:
            assert change.old_row is not None
            self._apply_delta(change.relation, change.old_row, adding=False)
        else:
            assert change.old_row is not None and change.new_row is not None
            self.stats.updates_handled += 1
            self._apply_delta(change.relation, change.old_row, adding=False)
            self._apply_delta(change.relation, change.new_row, adding=True)

    def _apply_delta(self, relation: str, row: Row, adding: bool) -> None:
        self.stats.delta_joins += 1
        results = compute_delta_join(
            self.database, self.template, relation, row, self.schema
        )
        for result in results:
            if adding:
                self._rows.add(result)
                self.stats.tuples_added += 1
            else:
                if self._rows.remove(result):
                    self.stats.tuples_removed += 1


class SmallMaterializedView(MaterializedView):
    """``VsM``: the full result set of one fixed basic condition part.

    Section 2.3's small MV for a "hot" cell such as
    ``(R.f=1, S.g=2)``.  Stores *all* tuples of that cell (no F bound)
    and is maintained immediately — including on inserts, which is the
    key maintenance-cost difference from a PMV entry.
    """

    def __init__(
        self,
        database: Database,
        template: QueryTemplate,
        cell: BasicConditionPart,
    ) -> None:
        if cell.arity != template.arity:
            raise ViewDefinitionError("cell arity does not match template")
        self.cell = cell
        super().__init__(database, template)
        self.name = f"smv_{template.name}_{cell.key!r}"

    def refresh(self) -> None:
        super().refresh()
        filtered = _RowMultiset()
        for row in self._rows.rows():
            if self.cell.matches(row):
                filtered.add(row)
        self._rows = filtered

    def _apply_delta(self, relation: str, row: Row, adding: bool) -> None:
        self.stats.delta_joins += 1
        results = compute_delta_join(
            self.database, self.template, relation, row, self.schema
        )
        for result in results:
            if not self.cell.matches(result):
                continue
            if adding:
                self._rows.add(result)
                self.stats.tuples_added += 1
            else:
                if self._rows.remove(result):
                    self.stats.tuples_removed += 1
