"""Operation O1: break a query's ``Cselect`` into condition parts.

Per Section 3.3, each ``Ci`` contributes a set ``Si``:

- equality form: one element per disjunct value;
- interval form: one element per (query interval × overlapping basic
  interval) intersection.

``Cselect`` then breaks into the cartesian product ``∏ Si`` of
non-overlapping condition parts, each contained in exactly one basic
condition part.  :func:`bcp_of_row` recovers the containing bcp of a
result tuple from its attribute values (used in Operation O3 and in
PMV maintenance, where the paper notes bcp "is recovered from ats").
"""

from __future__ import annotations

import itertools

from repro.core.condition import (
    BasicConditionPart,
    ConditionPart,
    Dimension,
    EqualityDim,
    IntervalDim,
)
from repro.core.discretize import Discretization
from repro.engine.predicate import EqualityDisjunction, IntervalDisjunction
from repro.engine.row import Row
from repro.engine.template import Query
from repro.errors import ConditionError

__all__ = ["decompose", "bcp_of_row"]


def decompose(query: Query, discretization: Discretization) -> list[ConditionPart]:
    """Break ``query``'s ``Cselect`` into non-overlapping condition parts.

    Returns the parts in deterministic (cartesian-product) order.  The
    number of parts is the paper's ``h`` when every part is basic.
    """
    if discretization.template is not query.template:
        raise ConditionError("discretization belongs to a different template")
    # dimension_choices[i] = list of (dim, containing_dim) for slot i.
    dimension_choices: list[list[tuple[Dimension, Dimension]]] = []
    for condition in query.cselect.conditions:
        choices: list[tuple[Dimension, Dimension]] = []
        if isinstance(condition, EqualityDisjunction):
            for value in condition.values:
                dim = EqualityDim(condition.column, value)
                choices.append((dim, dim))
        else:
            assert isinstance(condition, IntervalDisjunction)
            grid = discretization.grid(condition.column)
            for query_interval in condition.intervals:
                for basic_id in grid.overlapping_ids(query_interval):
                    basic = grid.interval(basic_id)
                    piece = basic.intersect(query_interval)
                    if piece is None:  # pragma: no cover - overlap guaranteed
                        continue
                    choices.append(
                        (
                            IntervalDim(condition.column, piece, basic_id),
                            IntervalDim(condition.column, basic, basic_id),
                        )
                    )
        dimension_choices.append(choices)

    parts: list[ConditionPart] = []
    for combo in itertools.product(*dimension_choices):
        dims = tuple(pair[0] for pair in combo)
        containing = BasicConditionPart(tuple(pair[1] for pair in combo))
        parts.append(ConditionPart(dims=dims, containing=containing))
    return parts


def bcp_of_row(row: Row, query: Query, discretization: Discretization) -> BasicConditionPart:
    """The containing basic condition part a result tuple belongs to.

    Recovered from the tuple's ``Cselect`` attribute values, which are
    guaranteed present because the plan projects to the expanded select
    list ``Ls'``.
    """
    dims: list[Dimension] = []
    for slot in query.template.slots:
        value = row[slot.column]
        if discretization.has_grid(slot.column):
            grid = discretization.grid(slot.column)
            basic_id = grid.id_for_value(value)
            dims.append(IntervalDim(slot.column, grid.interval(basic_id), basic_id))
        else:
            dims.append(EqualityDim(slot.column, value))
    return BasicConditionPart(tuple(dims))
