"""Operation O1: break a query's ``Cselect`` into condition parts.

Per Section 3.3, each ``Ci`` contributes a set ``Si``:

- equality form: one element per disjunct value;
- interval form: one element per (query interval × overlapping basic
  interval) intersection.

``Cselect`` then breaks into the cartesian product ``∏ Si`` of
non-overlapping condition parts, each contained in exactly one basic
condition part.  :func:`bcp_of_row` recovers the containing bcp of a
result tuple from its attribute values (used in Operation O3 and in
PMV maintenance, where the paper notes bcp "is recovered from ats").

Decomposition is a pure function of the bound ``Cselect`` and the
(immutable) discretization, so repeated queries — the common case
under the skewed workloads of Section 4 — redo identical work.
:class:`DecompositionCache` memoizes it with a small LRU keyed by the
bound ``Cselect`` value.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.core.condition import (
    BasicConditionPart,
    ConditionPart,
    Dimension,
    EqualityDim,
    IntervalDim,
)
from repro.core.discretize import Discretization
from repro.engine.predicate import EqualityDisjunction, IntervalDisjunction
from repro.engine.row import Row
from repro.engine.template import Query
from repro.errors import ConditionError

__all__ = [
    "decompose",
    "bcp_of_row",
    "group_parts",
    "PartGroup",
    "DecompositionCache",
]


def decompose(query: Query, discretization: Discretization) -> list[ConditionPart]:
    """Break ``query``'s ``Cselect`` into non-overlapping condition parts.

    Returns the parts in deterministic (cartesian-product) order.  The
    number of parts is the paper's ``h`` when every part is basic.
    """
    if discretization.template is not query.template:
        raise ConditionError("discretization belongs to a different template")
    # dimension_choices[i] = list of (dim, containing_dim) for slot i.
    dimension_choices: list[list[tuple[Dimension, Dimension]]] = []
    for condition in query.cselect.conditions:
        choices: list[tuple[Dimension, Dimension]] = []
        if isinstance(condition, EqualityDisjunction):
            for value in condition.values:
                dim = EqualityDim(condition.column, value)
                choices.append((dim, dim))
        else:
            assert isinstance(condition, IntervalDisjunction)
            grid = discretization.grid(condition.column)
            for query_interval in condition.intervals:
                for basic_id in grid.overlapping_ids(query_interval):
                    basic = grid.interval(basic_id)
                    piece = basic.intersect(query_interval)
                    if piece is None:  # pragma: no cover - overlap guaranteed
                        continue
                    choices.append(
                        (
                            IntervalDim(condition.column, piece, basic_id),
                            IntervalDim(condition.column, basic, basic_id),
                        )
                    )
        dimension_choices.append(choices)

    parts: list[ConditionPart] = []
    for combo in itertools.product(*dimension_choices):
        dims = tuple(pair[0] for pair in combo)
        containing = BasicConditionPart(tuple(pair[1] for pair in combo))
        parts.append(ConditionPart(dims=dims, containing=containing))
    return parts


@dataclass(frozen=True)
class PartGroup:
    """The condition parts sharing one containing bcp, preprocessed
    for Operation O2.

    ``has_basic`` records whether any part coincides with the bcp —
    then every cached tuple of the entry satisfies the query and the
    per-row predicate checks can be skipped entirely.  Both the bcp
    ``key`` and ``has_basic`` are pure functions of the parts, so
    computing them here (once, possibly memoized) keeps property
    re-evaluation out of O2's per-row loop.
    """

    key: tuple
    parts: tuple[ConditionPart, ...]
    has_basic: bool


def group_parts(parts: list[ConditionPart]) -> tuple[PartGroup, ...]:
    """Group a decomposition by containing bcp, in first-seen order.

    Several parts may share one containing bcp (a query interval split
    inside a single basic interval); the bcp appears in the query's
    ``Cselect`` once, so O2 references and probes it once per group.
    """
    by_key: "OrderedDict[tuple, list[ConditionPart]]" = OrderedDict()
    for part in parts:
        by_key.setdefault(part.containing.key, []).append(part)
    return tuple(
        PartGroup(
            key=key,
            parts=tuple(key_parts),
            has_basic=any(part.is_basic for part in key_parts),
        )
        for key, key_parts in by_key.items()
    )


def _memo_key(cselect) -> tuple:
    """A flat, primitives-only key equivalent to ``Cselect`` equality.

    Hashing the ``Cselect`` dataclasses directly recurses through
    Python-level ``__hash__``/``__eq__`` on every memo probe; this
    tuple of tagged ``(column, bounds)`` pairs hashes and compares at
    C speed and distinguishes exactly what dataclass equality does.
    """
    key = []
    for cond in cselect.conditions:
        if isinstance(cond, EqualityDisjunction):
            key.append(("eq", cond.column, cond.values))
        else:
            key.append(
                (
                    "iv",
                    cond.column,
                    tuple(
                        (iv.low, iv.high, iv.low_inclusive, iv.high_inclusive)
                        for iv in cond.intervals
                    ),
                )
            )
    return tuple(key)


class DecompositionCache:
    """LRU memo of :func:`decompose` results for one discretization.

    The key is derived from the query's bound ``Cselect`` (flattened
    to primitives — see :func:`_memo_key`), so two queries with the
    same bound values share one entry regardless of object identity.
    The cached part list is stored as a tuple and returned as a fresh
    list, so callers may mutate their copy freely.

    One cache serves one (template, discretization) pair — the
    executor owns it — which is why the discretization is not part of
    the key.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConditionError("DecompositionCache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        # OrderedDict move_to_end/popitem are not atomic; concurrent O1
        # runs from multiple client threads share this memo.
        self._mutex = threading.Lock()
        # Cselect -> (parts, O2-ready part groups).
        self._entries: OrderedDict[
            Any, tuple[tuple[ConditionPart, ...], tuple[PartGroup, ...]]
        ] = OrderedDict()

    def _fetch(
        self, query: Query, discretization: Discretization
    ) -> tuple[tuple[ConditionPart, ...], tuple[PartGroup, ...]]:
        key = _memo_key(query.cselect)
        with self._mutex:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        # Decompose outside the mutex (pure computation; a racing miss
        # on the same key just does the same work and wins last).
        parts = decompose(query, discretization)
        entry = (tuple(parts), group_parts(parts))
        with self._mutex:
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def decompose(self, query: Query, discretization: Discretization) -> list[ConditionPart]:
        """Memoized :func:`decompose`; identical output, LRU-cached."""
        return list(self._fetch(query, discretization)[0])

    def decompose_grouped(
        self, query: Query, discretization: Discretization
    ) -> tuple[tuple[ConditionPart, ...], tuple[PartGroup, ...]]:
        """Memoized decomposition plus its O2-ready part groups.

        Both tuples are the cached objects themselves (parts are
        immutable); callers must not mutate them.  Use
        :meth:`decompose` for a caller-owned list.
        """
        return self._fetch(query, discretization)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._entries.clear()

    def info(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }


def bcp_of_row(row: Row, query: Query, discretization: Discretization) -> BasicConditionPart:
    """The containing basic condition part a result tuple belongs to.

    Recovered from the tuple's ``Cselect`` attribute values, which are
    guaranteed present because the plan projects to the expanded select
    list ``Ls'``.
    """
    dims: list[Dimension] = []
    for slot in query.template.slots:
        value = row[slot.column]
        if discretization.has_grid(slot.column):
            grid = discretization.grid(slot.column)
            basic_id = grid.id_for_value(value)
            dims.append(IntervalDim(slot.column, grid.interval(basic_id), basic_id))
        else:
            dims.append(EqualityDim(slot.column, value))
    return BasicConditionPart(tuple(dims))
