"""Cache-replacement policies for basic condition parts.

The paper manages the bcps inside a PMV with CLOCK by default
(Section 3.2) and shows a simplified 2Q doing better (Sections 3.5,
4.1).  LRU and FIFO are included for the ablation benchmarks.

All policies share one small interface, :meth:`ReplacementPolicy.reference`:
every time a bcp appears (in a query's ``Cselect`` during Operations
O1/O2), the policy is told and answers with a :class:`ReferenceResult`:

- ``resident_before`` — was the bcp already resident (a *hit*, so its
  cached tuples can be returned)?
- ``admitted`` — is the bcp resident after this reference?  The
  simplified 2Q answers ``False`` the first time it ever sees a bcp
  (the bcp only enters the A1 staging queue, per Section 4.1).
- ``evicted`` — bcps pushed out to make room; the PMV drops their
  cached tuples.

Policies track *keys* only; the PMV owns the tuples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from typing import Hashable, Iterator

from repro.errors import ViewCapacityError

__all__ = [
    "ReferenceResult",
    "ReplacementPolicy",
    "ClockPolicy",
    "TwoQueuePolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "make_policy",
]

Key = Hashable


class ReferenceResult:
    """Outcome of one policy reference (see module docstring).

    A plain ``__slots__`` class rather than a dataclass: one is built
    per bcp per query on the O2 hot path, and frozen-dataclass
    construction (``object.__setattr__`` per field) is several times
    slower than direct slot assignment.
    """

    __slots__ = ("key", "resident_before", "admitted", "evicted")

    def __init__(
        self,
        key: Key,
        resident_before: bool,
        admitted: bool,
        evicted: tuple[Key, ...] = (),
    ) -> None:
        self.key = key
        self.resident_before = resident_before
        self.admitted = admitted
        self.evicted = evicted

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ReferenceResult)
            and self.key == other.key
            and self.resident_before == other.resident_before
            and self.admitted == other.admitted
            and self.evicted == other.evicted
        )

    def __repr__(self) -> str:
        return (
            f"ReferenceResult(key={self.key!r}, "
            f"resident_before={self.resident_before!r}, "
            f"admitted={self.admitted!r}, evicted={self.evicted!r})"
        )


class ReplacementPolicy(ABC):
    """Common interface for bcp replacement policies."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ViewCapacityError("policy capacity must be >= 1")
        self.capacity = capacity
        self.references = 0
        self.hits = 0

    @abstractmethod
    def reference(self, key: Key) -> ReferenceResult:
        """Record an appearance of ``key`` and admit/evict as needed."""

    @abstractmethod
    def contains(self, key: Key) -> bool:
        """Whether ``key`` is resident (can serve cached tuples)."""

    @abstractmethod
    def discard(self, key: Key) -> bool:
        """Forcibly remove ``key`` (PMV maintenance); True if present."""

    @abstractmethod
    def resident_keys(self) -> Iterator[Key]:
        """Iterate over the currently resident keys."""

    @abstractmethod
    def force_evict(self) -> Key | None:
        """Evict and return one resident key of the policy's choosing
        (``None`` when nothing is resident).  Used by the PMV to shed
        entries when its byte budget UB is exceeded."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident keys."""

    def _count(self, resident_before: bool) -> None:
        self.references += 1
        if resident_before:
            self.hits += 1

    @property
    def hit_ratio(self) -> float:
        """Per-reference hit ratio (not the paper's per-query hit
        probability — that is computed by the simulator)."""
        return self.hits / self.references if self.references else 0.0


class _ClockCore:
    """Second-chance ring with O(1) amortized insert/evict/discard.

    The ring is an append-only list with tombstones; the hand skips
    dead entries and the list is compacted when mostly dead.
    """

    __slots__ = ("_ref", "_ring", "_hand", "_dead")

    def __init__(self) -> None:
        self._ref: dict[Key, bool] = {}
        self._ring: list[Key | None] = []
        self._hand = 0
        self._dead = 0

    def __len__(self) -> int:
        return len(self._ref)

    def __contains__(self, key: Key) -> bool:
        return key in self._ref

    def keys(self) -> Iterator[Key]:
        return iter(self._ref)

    def touch(self, key: Key) -> None:
        self._ref[key] = True

    def insert(self, key: Key) -> None:
        self._ref[key] = True
        self._ring.append(key)

    def discard(self, key: Key) -> bool:
        if key not in self._ref:
            return False
        del self._ref[key]
        self._dead += 1  # the ring slot becomes a lazy tombstone
        self._maybe_compact()
        return True

    def evict(self) -> Key | None:
        """Advance the hand to the next unreferenced key and remove it.

        Returns ``None`` when no key is resident.  The ring may still
        be non-empty then — tombstones left by ``discard`` linger below
        the compaction threshold — and without this guard the hand
        would chase them around the ring forever.
        """
        if not self._ref:
            return None
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if key is None or key not in self._ref:
                # Tombstone left by discard(); reclaim the slot.
                if key is not None:
                    self._ring[self._hand] = None
                self._hand += 1
                continue
            if self._ref[key]:
                self._ref[key] = False  # second chance
                self._hand += 1
                continue
            self._ring[self._hand] = None
            self._hand += 1
            self._dead += 1
            del self._ref[key]
            self._maybe_compact()
            return key

    def _maybe_compact(self) -> None:
        if self._dead * 2 > len(self._ring) and self._dead > 64:
            live = [k for k in self._ring if k is not None and k in self._ref]
            self._ring = live
            self._hand = 0
            self._dead = 0


class ClockPolicy(ReplacementPolicy):
    """The CLOCK (second-chance) policy of Section 3.2.

    Every referenced bcp is admitted immediately; when the queue of L
    entries is full, the hand sweeps for a victim whose reference bit
    is clear.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._core = _ClockCore()

    def reference(self, key: Key) -> ReferenceResult:
        core = self._core
        self.references += 1
        if key in core._ref:
            # Inlined hit path (no _count/touch calls): one reference
            # per bcp per query makes this the policy's hottest line.
            self.hits += 1
            core._ref[key] = True
            return ReferenceResult(key, True, True)
        evicted: list[Key] = []
        if len(core) >= self.capacity:
            victim = core.evict()
            if victim is not None:
                evicted.append(victim)
        core.insert(key)
        return ReferenceResult(key, False, True, tuple(evicted))

    def contains(self, key: Key) -> bool:
        return key in self._core

    def discard(self, key: Key) -> bool:
        return self._core.discard(key)

    def resident_keys(self) -> Iterator[Key]:
        return self._core.keys()

    def force_evict(self) -> Key | None:
        return self._core.evict()

    def __len__(self) -> int:
        return len(self._core)


class TwoQueuePolicy(ReplacementPolicy):
    """The paper's simplified 2Q (Section 4.1).

    ``Am`` holds ``capacity`` full entries (bcp + tuples) managed by
    CLOCK; ``A1`` is a FIFO ghost queue of ``a1_ratio × capacity``
    bcp-only entries.  A bcp's first-ever appearance stages it in A1;
    a reappearance while still staged promotes it (with its tuples) to
    Am.  Only Am serves partial results.
    """

    def __init__(self, capacity: int, a1_ratio: float = 0.5) -> None:
        super().__init__(capacity)
        if a1_ratio <= 0:
            raise ViewCapacityError("a1_ratio must be positive")
        self.a1_capacity = max(1, int(round(a1_ratio * capacity)))
        self._am = _ClockCore()
        self._a1: OrderedDict[Key, None] = OrderedDict()

    def reference(self, key: Key) -> ReferenceResult:
        if key in self._am:
            self._count(True)
            self._am.touch(key)
            return ReferenceResult(key, True, True)
        self._count(False)
        if key in self._a1:
            del self._a1[key]
            evicted: list[Key] = []
            if len(self._am) >= self.capacity:
                victim = self._am.evict()
                if victim is not None:
                    evicted.append(victim)
            self._am.insert(key)
            return ReferenceResult(key, False, True, tuple(evicted))
        # First sighting: stage in A1 only.
        self._a1[key] = None
        if len(self._a1) > self.a1_capacity:
            self._a1.popitem(last=False)
        return ReferenceResult(key, False, False)

    def contains(self, key: Key) -> bool:
        return key in self._am

    def staged(self, key: Key) -> bool:
        """Whether ``key`` currently sits in the A1 ghost queue."""
        return key in self._a1

    def discard(self, key: Key) -> bool:
        self._a1.pop(key, None)
        return self._am.discard(key)

    def resident_keys(self) -> Iterator[Key]:
        return self._am.keys()

    def force_evict(self) -> Key | None:
        return self._am.evict()

    def __len__(self) -> int:
        return len(self._am)


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used (ablation baseline)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict[Key, None] = OrderedDict()

    def reference(self, key: Key) -> ReferenceResult:
        if key in self._entries:
            self._count(True)
            self._entries.move_to_end(key)
            return ReferenceResult(key, True, True)
        self._count(False)
        evicted: list[Key] = []
        if len(self._entries) >= self.capacity:
            victim, _ = self._entries.popitem(last=False)
            evicted.append(victim)
        self._entries[key] = None
        return ReferenceResult(key, False, True, tuple(evicted))

    def contains(self, key: Key) -> bool:
        return key in self._entries

    def discard(self, key: Key) -> bool:
        return self._entries.pop(key, _MISSING) is not _MISSING

    def resident_keys(self) -> Iterator[Key]:
        return iter(self._entries)

    def force_evict(self) -> Key | None:
        if not self._entries:
            return None
        victim, _ = self._entries.popitem(last=False)
        return victim

    def __len__(self) -> int:
        return len(self._entries)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out (ablation baseline; hits do not refresh)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._present: set[Key] = set()
        self._queue: deque[Key] = deque()

    def reference(self, key: Key) -> ReferenceResult:
        if key in self._present:
            self._count(True)
            return ReferenceResult(key, True, True)
        self._count(False)
        evicted: list[Key] = []
        while len(self._present) >= self.capacity:
            victim = self._queue.popleft()
            if victim in self._present:
                self._present.discard(victim)
                evicted.append(victim)
        self._present.add(key)
        self._queue.append(key)
        return ReferenceResult(key, False, True, tuple(evicted))

    def contains(self, key: Key) -> bool:
        return key in self._present

    def discard(self, key: Key) -> bool:
        # Lazy removal: the queue entry becomes stale and is skipped at
        # eviction time.
        if key in self._present:
            self._present.discard(key)
            return True
        return False

    def resident_keys(self) -> Iterator[Key]:
        return iter(self._present)

    def force_evict(self) -> Key | None:
        while self._queue:
            victim = self._queue.popleft()
            if victim in self._present:
                self._present.discard(victim)
                return victim
        return None

    def __len__(self) -> int:
        return len(self._present)


_MISSING = object()

_POLICIES = {
    "clock": ClockPolicy,
    "2q": TwoQueuePolicy,
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
}


def make_policy(name: str, capacity: int, **kwargs) -> ReplacementPolicy:
    """Factory: ``make_policy("clock", 20_000)``.

    Known names: ``clock``, ``2q``, ``lru``, ``fifo``.
    """
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ViewCapacityError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(capacity, **kwargs)
