"""repro — a full reproduction of *Partial Materialized Views*
(Gang Luo, ICDE 2007).

The package has four layers:

- :mod:`repro.engine` — a from-scratch single-node RDBMS substrate:
  slotted pages, a simulated disk with I/O accounting, a CLOCK buffer
  pool, heap relations, hash/ordered secondary indexes, the paper's
  ``qt`` query-template model, a rule-based planner with Volcano-style
  operators, and S/X locking;
- :mod:`repro.core` — the paper's contribution: basic condition parts
  and discretization, Operation O1 decomposition, the bounded
  :class:`~repro.core.view.PartialMaterializedView` with pluggable
  replacement (CLOCK / simplified 2Q / LRU / FIFO), the O1/O2/O3
  executor returning immediate partial results, deferred maintenance,
  traditional-MV baselines, and the analytical maintenance cost model;
- :mod:`repro.workload` — Zipfian distributions, the TPC-R-like data
  generator of Table 1, and the T1/T2/Eqt templates with controlled
  and skewed query streams;
- :mod:`repro.sim` / :mod:`repro.bench` — the Section 4.1 simulation
  study and one experiment driver per table/figure of Section 4;
- :mod:`repro.qos` — overload protection around a PMV fleet: admission
  control, per-query deadlines that degrade answers to explicit PMV
  partial results, and the NORMAL/DEGRADED/SHED governor
  (:class:`~repro.qos.ServingGate` is the front door);
- :mod:`repro.replication` — WAL-shipping replication: checksummed log
  records streamed to warm-standby replicas whose PMV fleets survive
  failover, with epoch fencing and a heartbeat-driven
  :class:`~repro.replication.FailoverCoordinator`.

Quickstart::

    from repro import (
        Database, Discretization, PartialMaterializedView, PMVExecutor,
    )
    from repro.workload import make_t1, load_tpcr, TPCRConfig

    db = Database()
    load_tpcr(db, TPCRConfig(scale_factor=1.0, downscale=1000))
    t1 = make_t1()
    db.register_template(t1)
    pmv = PartialMaterializedView(
        t1, Discretization(t1), tuples_per_entry=3, max_entries=20_000
    )
    executor = PMVExecutor(db, pmv)
    result = executor.execute(some_query)   # result.partial_rows arrive first
"""

from repro.core import (
    BasicConditionPart,
    BasicIntervals,
    ClockPolicy,
    ConditionPart,
    CostParameters,
    Discretization,
    DuplicateSuppressor,
    MaintenanceCostModel,
    MaintenanceStrategy,
    MaterializedView,
    PMVExecutor,
    PMVMaintainer,
    PMVQueryResult,
    PartialMaterializedView,
    SmallMaterializedView,
    TwoQueuePolicy,
    decompose,
    entries_for_budget,
    learn_dividing_values,
    make_policy,
)
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    Query,
    QueryTemplate,
    Row,
    SelectionSlot,
    SlotForm,
)
from repro.core.manager import PMVManager
from repro.errors import OverloadError, ReproError
from repro.qos import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DegradationGovernor,
    GovernorConfig,
    QoSState,
    ServingGate,
)
from repro.replication import (
    FailoverCoordinator,
    PrimaryNode,
    ReplicaNode,
)

__version__ = "0.1.0"

__all__ = [
    "AdmissionController",
    "BasicConditionPart",
    "BasicIntervals",
    "CircuitBreaker",
    "ClockPolicy",
    "Column",
    "ConditionPart",
    "CostParameters",
    "Database",
    "Deadline",
    "DegradationGovernor",
    "Discretization",
    "DuplicateSuppressor",
    "EqualityDisjunction",
    "FailoverCoordinator",
    "GovernorConfig",
    "Interval",
    "IntervalDisjunction",
    "JoinEquality",
    "MaintenanceCostModel",
    "MaintenanceStrategy",
    "MaterializedView",
    "OverloadError",
    "PMVExecutor",
    "PMVMaintainer",
    "PMVManager",
    "PMVQueryResult",
    "PartialMaterializedView",
    "PrimaryNode",
    "QoSState",
    "ReplicaNode",
    "Query",
    "QueryTemplate",
    "ReproError",
    "Row",
    "SelectionSlot",
    "ServingGate",
    "SlotForm",
    "SmallMaterializedView",
    "TwoQueuePolicy",
    "decompose",
    "entries_for_budget",
    "learn_dividing_values",
    "make_policy",
    "__version__",
]
